//! Algorithm 1: the CDCL training loop.
//!
//! Per task: instantiate `K_i`/`b_i` + heads, warm up on the labelled source
//! (Eqs. 9, 12), then alternate — rebuild centroids and pseudo-labels every
//! epoch (Eqs. 17–19), optimize the CIL/TIL loss triples on matched pairs
//! (Eqs. 9–16) plus the rehearsal losses on memory records (Eqs. 20–23) —
//! and finally store the task's highest-confidence pairs in memory.

use cdcl_autograd::{Graph, Var};
use cdcl_data::{stack, Batcher, Sample, TaskData};
use cdcl_nn::Module;
use cdcl_optim::{AdamW, LrSchedule, Optimizer, WarmupCosine};
use cdcl_telemetry as telemetry;
use cdcl_tensor::{kernels, PooledBuf, Tensor};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::health;
use crate::memory::{MemoryRecord, RehearsalMemory};
use crate::model::CdclModel;
use crate::protocol::{accuracy_from_predictions, ContinualLearner};
use crate::pseudo::{
    build_pairs, label_flip_rate, nearest_centroid_labels, weighted_centroids, Pair,
};
use crate::CdclConfig;

/// Inference chunk size (bounds peak memory during evaluation).
const EVAL_CHUNK: usize = 32;

/// Work estimate handed to the thread pool per evaluation chunk. A forward
/// pass over `EVAL_CHUNK` images is millions of FLOPs — far above the pool's
/// splitting threshold — so any multi-chunk evaluation parallelizes.
const EVAL_CHUNK_WORK: usize = 1 << 20;

/// One drift-scored window: the nearest archived task under the cosine
/// centroid match of [`CdclTrainer::drift_score`], its distance
/// (`1 − mean max-cosine`, the [`crate::DriftDetector`] input), and the
/// margin to the runner-up task (0 when only one task has centroids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScore {
    /// Nearest archived task id.
    pub task: usize,
    /// Distance of the window to that task's centroid set.
    pub distance: f64,
    /// Runner-up distance minus best distance (task-ID confidence).
    pub margin: f64,
}

/// The CDCL learner: model + memory + optimizer + Algorithm 1.
///
/// Fields are `pub(crate)` so the snapshot module (`crate::snapshot`) can
/// export and reassemble the full state without widening the public API.
pub struct CdclTrainer {
    pub(crate) config: CdclConfig,
    pub(crate) model: CdclModel,
    pub(crate) memory: RehearsalMemory,
    pub(crate) optimizer: AdamW,
    pub(crate) rng: SmallRng,
    pub(crate) replay_cursor: usize,
    /// Pairs built during the last adaptation epoch (reused for memory
    /// candidate selection at task end).
    pub(crate) last_pairs: Vec<Pair>,
    /// Whether the current task's first training graph has already been
    /// through the full verifier (reset by `learn_task`).
    pub(crate) graph_verified: bool,
    /// Final pseudo-label centroids (Eq. 17, second center-aware round) of
    /// each completed task: `centroids[t]` is `[u_t, d]`, or `[0, d]` when
    /// the task trained without an adaptation epoch. Persisted in snapshots
    /// for TADIL-style serve-time task inference.
    pub(crate) centroids: Vec<Tensor>,
    /// Second-round centroids of the most recent `refresh_pairs` call —
    /// promoted into `centroids` when the task ends.
    pub(crate) last_centroids: Option<Tensor>,
    /// Per-step tape arena: reset (capacity retained) at the top of every
    /// warm-up/adaptation step instead of constructing a fresh `Graph`, so
    /// steady-state steps record and differentiate without allocating
    /// (DESIGN.md §12). Not part of snapshots — it carries no learner state
    /// between steps.
    pub(crate) step_graph: Graph,
}

impl CdclTrainer {
    /// Builds a fresh CDCL learner.
    pub fn new(config: CdclConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = CdclModel::new(&mut rng, config.backbone);
        let optimizer = AdamW::with_weight_decay(model.params(), config.weight_decay);
        Self {
            config,
            model,
            memory: RehearsalMemory::new(config.memory_size),
            optimizer,
            rng,
            replay_cursor: 0,
            last_pairs: Vec::new(),
            graph_verified: false,
            centroids: Vec::new(),
            last_centroids: None,
            step_graph: Graph::new(),
        }
    }

    /// The underlying model (for tests and analysis).
    pub fn model(&self) -> &CdclModel {
        &self.model
    }

    /// The rehearsal memory (for tests and analysis).
    pub fn memory(&self) -> &RehearsalMemory {
        &self.memory
    }

    /// The active configuration.
    pub fn config(&self) -> &CdclConfig {
        &self.config
    }

    /// Final pseudo-label centroids (Eq. 17) per completed task:
    /// `task_centroids()[t]` is `[u_t, d]` (`[0, d]` for tasks that never
    /// ran an adaptation epoch). These are what `cdcl-serve` uses for
    /// nearest-centroid task-ID inference.
    pub fn task_centroids(&self) -> &[Tensor] {
        &self.centroids
    }

    /// The `(channels, height, width)` shape one inference image must
    /// flatten to. Serving code (request validation, snapshot-registry
    /// compatibility checks) routes through this instead of reaching into
    /// the backbone config.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        let (h, w) = self.config.backbone.in_hw;
        (self.config.backbone.in_channels, h, w)
    }

    /// Re-verifies every task of a restored model through the graph
    /// verifier before it is put behind a serving endpoint: one
    /// forward-only graph per task (through that task's `K_i`/`b_i` and
    /// TIL head) is checked for shape consistency and the §IV-A freezing
    /// contract over [`CdclModel::expected_frozen_params`]. A snapshot that
    /// passed the loader's structural validation but violates the freezing
    /// invariants is refused here.
    pub fn verify_frozen_serving(&self) -> Result<(), String> {
        let frozen = self.model.expected_frozen_params();
        let (c, h, w) = self.input_dims();
        for t in 0..self.model.num_tasks() {
            let mut g = Graph::new();
            let x = g.input(Tensor::zeros(&[1, c, h, w]));
            let z = self.model.features_self(&mut g, x, t);
            let til = self.model.til_logits(&mut g, z, t);
            let lp = g.log_softmax_last(til);
            let loss = g.nll_loss(lp, &[0]);
            g.verify(loss, &frozen)
                .map_err(|e| format!("snapshot failed graph re-verification for task {t}: {e}"))?;
        }
        if telemetry::enabled() {
            telemetry::Event::new("serve")
                .name("frozen_reverified")
                .u64_field("tasks", self.model.num_tasks() as u64)
                .u64_field("frozen_params", frozen.len() as u64)
                .emit();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Feature / probability extraction (inference mode, chunked)
    // ------------------------------------------------------------------

    fn stack_batch(samples: &[Sample], idx: &[usize]) -> (Tensor, Vec<usize>) {
        let refs: Vec<&Sample> = idx.iter().map(|&i| &samples[i]).collect();
        stack(&refs)
    }

    /// `√(Σ_θ ‖∇θ‖²)` over all model parameters. Telemetry-only work —
    /// call sites gate it on [`telemetry::enabled`], so untraced runs never
    /// touch the gradients outside the optimizer.
    fn grad_norm(&self) -> f64 {
        self.model
            .params()
            .iter()
            .map(cdcl_autograd::Param::grad_norm_sq)
            .sum::<f64>()
            .sqrt()
    }

    /// Emits the per-step `grad_norm` scalar and runs the NaN/Inf watchdog
    /// on both `loss` and the gradient norm (tracing enabled only).
    fn trace_step(&self, loss_name: &'static str, loss: f64, ctx: telemetry::WatchdogCtx) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::check_finite(loss_name, loss, ctx);
        let gn = self.grad_norm();
        telemetry::Event::new("scalar")
            .name("grad_norm")
            .task(ctx.task)
            .epoch(ctx.epoch)
            .step(ctx.step)
            .value(gn)
            .emit();
        telemetry::check_finite("grad_norm", gn, ctx);
    }

    /// Runs `body` on each `EVAL_CHUNK`-sized sub-range of `0..len`, spread
    /// across the kernel thread pool. Chunk results come back in ascending
    /// chunk order regardless of thread count, and each chunk is produced
    /// entirely by one thread, so concatenating them is bitwise identical
    /// to the serial loop.
    fn eval_chunks<T: Send>(
        &self,
        len: usize,
        body: impl Fn(std::ops::Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        kernels::par_map_ranges(len.div_ceil(EVAL_CHUNK), EVAL_CHUNK_WORK, |chunks| {
            chunks
                .map(|c| body(c * EVAL_CHUNK..((c + 1) * EVAL_CHUNK).min(len)))
                .collect()
        })
    }

    fn extract_features(&self, samples: &[Sample], task: usize) -> Tensor {
        let parts = self.eval_chunks(samples.len(), |range| {
            let idx: Vec<usize> = range.collect();
            let (imgs, _) = Self::stack_batch(samples, &idx);
            self.model.extract_features(&imgs, task)
        });
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    }

    fn til_probabilities(&self, samples: &[Sample], task: usize) -> Tensor {
        let parts = self.eval_chunks(samples.len(), |range| {
            let idx: Vec<usize> = range.collect();
            let (imgs, _) = Self::stack_batch(samples, &idx);
            self.model.predict_til(&imgs, task)
        });
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat0(&refs)
    }

    /// Scores one window of unlabeled samples against every completed
    /// task's archived Eq.-17 centroids: for each task `t` with a non-empty
    /// centroid set, the window's features (extracted through task `t`'s
    /// frozen `K_t`/`b_t` path, as at pseudo-labeling time) are cosine-
    /// matched to the centroids, and the task's distance is
    /// `1 − mean_i max_u cos(z_i, c_u)` — small when the window looks like
    /// task `t`, approaching 1 (or beyond, for anti-aligned features) when
    /// it does not. Returns the best task, its distance (the
    /// [`crate::DriftDetector`] input), and the runner-up margin, or `None`
    /// when the window is empty or no task has centroids yet (all-warm-up
    /// models cannot anchor drift scoring). Ties break toward the older
    /// task id, keeping the score deterministic.
    pub fn drift_score(&self, samples: &[Sample]) -> Option<DriftScore> {
        if samples.is_empty() {
            return None;
        }
        let _s = telemetry::span("drift_detect").task(self.model.num_tasks());
        let mut ranked: Vec<(usize, f64)> = Vec::new();
        for (t, cents) in self.centroids.iter().enumerate() {
            if cents.shape()[0] == 0 {
                continue;
            }
            let feats = self.extract_features(samples, t).l2_normalize_last();
            let sims = feats.matmul(&cents.l2_normalize_last().transpose_last2());
            let (n, u) = (sims.shape()[0], sims.shape()[1]);
            let data = sims.data();
            let mut total = 0.0f64;
            for i in 0..n {
                let row = &data[i * u..(i + 1) * u];
                let best = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                total += f64::from(best);
            }
            ranked.push((t, 1.0 - total / n as f64));
        }
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let &(task, distance) = ranked.first()?;
        let margin = ranked.get(1).map_or(0.0, |&(_, d)| d - distance);
        Some(DriftScore {
            task,
            distance,
            margin,
        })
    }

    // ------------------------------------------------------------------
    // Loss assembly
    // ------------------------------------------------------------------

    /// Adds the CIL or TIL loss triple `L_S + L_T + L_D` (Eqs. 15/16) for a
    /// batch of matched pairs. `heads` maps pooled features to logits.
    fn loss_triple(
        &self,
        g: &mut Graph,
        z_src: Var,
        z_tgt: Var,
        z_mixed: Var,
        labels: &[usize],
        til_task: Option<usize>,
    ) -> Var {
        let (logits_s, logits_t, logits_m) = match til_task {
            Some(t) => (
                self.model.til_logits(g, z_src, t),
                self.model.til_logits(g, z_tgt, t),
                self.model.til_logits(g, z_mixed, t),
            ),
            None => (
                self.model.cil_logits(g, z_src),
                self.model.cil_logits(g, z_tgt),
                self.model.cil_logits(g, z_mixed),
            ),
        };
        let lp_s = g.log_softmax_last(logits_s);
        let lp_t = g.log_softmax_last(logits_t);
        let lp_m = g.log_softmax_last(logits_m);
        // L_S (Eq. 9/12): supervised CE on the source.
        let l_s = g.nll_loss(lp_s, labels);
        // L_T (Eq. 10/13): CE of the target prediction against the *paired
        // source label* (= matching pseudo-label per Eq. 19).
        let l_t = g.nll_loss(lp_t, labels);
        // L_D (Eq. 11/14): align the mixed cross-attention prediction with
        // the target prediction — symmetric distillation with detached
        // teachers (see DESIGN.md §2 on the sign of Eq. 11).
        let teacher_m = g.value(logits_m).softmax_last();
        let teacher_t = g.value(logits_t).softmax_last();
        let l_d1 = g.ce_soft(lp_t, teacher_m);
        let l_d2 = g.ce_soft(lp_m, teacher_t);
        let l_d1 = g.scale(l_d1, 0.5);
        let l_d2 = g.scale(l_d2, 0.5);
        let st = g.add(l_s, l_t);
        let d = g.add(l_d1, l_d2);
        g.add(st, d)
    }

    /// Adds the rehearsal losses (Eqs. 20–23) for one group of memory
    /// records that share an origin task. Returns `None` when the group is
    /// empty.
    fn rehearsal_loss(&self, g: &mut Graph, records: &[&MemoryRecord]) -> Option<Var> {
        if records.is_empty() {
            return None;
        }
        let task = records[0].task;
        // Memory-record staging goes through the tensor pool: rehearsal
        // batches share shapes across steps, so these buffers recycle.
        let stack_records = |pick: fn(&MemoryRecord) -> &Tensor| {
            let shape = pick(records[0]).shape().to_vec();
            let per = pick(records[0]).len();
            let mut data = PooledBuf::take_uninit(records.len() * per);
            for (i, r) in records.iter().enumerate() {
                data[i * per..(i + 1) * per].copy_from_slice(pick(r).data());
            }
            let mut s = vec![records.len()];
            s.extend_from_slice(&shape);
            Tensor::from_buf(data, &s)
        };
        let src_imgs = stack_records(|r| &r.x_source);
        let tgt_imgs = stack_records(|r| &r.x_target);
        let globals: Vec<usize> = records.iter().map(|r| r.global_label).collect();

        let xs = g.input(src_imgs);
        let xt = g.input(tgt_imgs);
        let zs = self.model.features_self(g, xs, task);
        let zt = self.model.features_self(g, xt, task);
        let zm = if self.config.cross_attention {
            self.model.features_cross(g, xs, xt, task)
        } else {
            zs
        };
        let cil_s = self.model.cil_logits(g, zs);
        let cil_t = self.model.cil_logits(g, zt);
        let cil_m = self.model.cil_logits(g, zm);
        let lp_s = g.log_softmax_last(cil_s);
        let lp_t = g.log_softmax_last(cil_t);
        let lp_m = g.log_softmax_last(cil_m);

        // L_R^ST (Eq. 20): CE of both replayed streams against the stored
        // source label, through the inter-task (CIL) head.
        let l_st_s = g.nll_loss(lp_s, &globals);
        let l_st_t = g.nll_loss(lp_t, &globals);
        let l_st = g.add(l_st_s, l_st_t);

        // L_R^D (Eq. 21): align the replayed mixed signal with the replayed
        // target prediction.
        let teacher_t = g.value(cil_t).softmax_last();
        let l_d = g.ce_soft(lp_m, teacher_t);

        // L_R^Z (Eq. 22): logit replay — KL between the stored distributions
        // and the current ones. Stored vectors cover only the classes known
        // at storage time; pad with zeros (zero-mass terms contribute
        // nothing to KL).
        let total = self.model.total_classes();
        let pad = |probs: &[f32]| {
            let mut row = vec![0.0f32; total];
            row[..probs.len()].copy_from_slice(probs);
            row
        };
        let stored_s: Vec<f32> = records
            .iter()
            .flat_map(|r| pad(&r.cil_probs_source))
            .collect();
        let stored_t: Vec<f32> = records
            .iter()
            .flat_map(|r| pad(&r.cil_probs_target))
            .collect();
        let n = records.len();
        let p_s = Tensor::from_vec(stored_s, &[n, total]);
        let p_t = Tensor::from_vec(stored_t, &[n, total]);
        let l_z_s = g.kl_div(lp_s, p_s);
        let l_z_t = g.kl_div(lp_t, p_t);
        let l_z = g.add(l_z_s, l_z_t);

        // L_R = L_R^ST + L_R^D + L_R^Z (Eq. 23).
        let partial = g.add(l_st, l_d);
        Some(g.add(partial, l_z))
    }

    /// Runs the full graph verifier (shape inference + gradient-flow audit,
    /// DESIGN.md §9) once per task, on the first training graph built after
    /// `add_task`. Called right after `backward`, so the frozen-zero-grad
    /// audit sees exactly what this step accumulated. The verifier is
    /// read-only, so training stays bitwise identical with it compiled in.
    fn verify_first_graph(&mut self, g: &Graph, loss: Var, task: usize, epoch: usize) {
        if self.graph_verified {
            return;
        }
        self.graph_verified = true;
        let _s = telemetry::span("graph_check").task(task).epoch(epoch);
        let frozen = self.model.expected_frozen_params();
        match g.verify(loss, &frozen) {
            Ok(report) => {
                if telemetry::enabled() {
                    telemetry::Event::new("graph_report")
                        .task(task)
                        .u64_field("graph_nodes", report.nodes as u64)
                        .u64_field("graph_param_leaves", report.param_leaves as u64)
                        .u64_field("graph_frozen_verified", report.frozen_verified as u64)
                        .u64_field("graph_dead_nodes", report.dead_nodes.len() as u64)
                        .emit();
                }
            }
            // lint-allow: verifier escalation — a violated shape or freezing
            // contract is a programming bug and must fail fast (see
            // lint-allow.txt).
            Err(e) => panic!("{e}"),
        }
    }

    /// One warm-up step: source-only supervised training of both heads.
    fn warmup_step(&mut self, task: &TaskData, idx: &[usize], lr: f32, epoch: usize, step: usize) {
        let _timer = health::WARMUP_STEP_US.time();
        let t = task.task_id;
        let (imgs, labels) = Self::stack_batch(&task.source_train, idx);
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();
        // Reuse the per-trainer tape arena (take/put-back so `self` stays
        // free for the model calls below).
        let mut g = std::mem::take(&mut self.step_graph);
        g.reset_for_step();
        let x = g.input(imgs);
        let z = self.model.features_self(&mut g, x, t);
        let mut loss = None;
        if self.config.losses.til {
            let logits = self.model.til_logits(&mut g, z, t);
            let lp = g.log_softmax_last(logits);
            let l = g.nll_loss(lp, &labels);
            loss = Some(l);
        }
        if self.config.losses.cil {
            let logits = self.model.cil_logits(&mut g, z);
            let lp = g.log_softmax_last(logits);
            let l = g.nll_loss(lp, &globals);
            loss = Some(match loss {
                Some(prev) => g.add(prev, l),
                None => l,
            });
        }
        let Some(loss) = loss else {
            self.step_graph = g;
            return;
        };
        self.optimizer.zero_grad();
        g.backward(loss);
        self.verify_first_graph(&g, loss, t, epoch);
        if telemetry::enabled() {
            let lv = f64::from(g.value(loss).item());
            telemetry::Event::new("scalar")
                .name("loss_warmup")
                .task(t)
                .epoch(epoch)
                .step(step)
                .value(lv)
                .emit();
            self.trace_step(
                "loss_warmup",
                lv,
                telemetry::WatchdogCtx {
                    phase: "warmup",
                    task: t,
                    epoch,
                    step,
                },
            );
        }
        if cdcl_obs::enabled() {
            health::STEPS_TOTAL.inc();
            health::LOSS.set(f64::from(g.value(loss).item()));
            health::GRAD_NORM.set(self.grad_norm());
        }
        self.optimizer.step(lr);
        self.step_graph = g;
    }

    /// One adaptation step on a batch of matched pairs (+ rehearsal).
    fn adaptation_step(
        &mut self,
        task: &TaskData,
        pairs: &[Pair],
        lr: f32,
        epoch: usize,
        step: usize,
    ) {
        let _timer = health::ADAPTATION_STEP_US.time();
        let t = task.task_id;
        let src_refs: Vec<&Sample> = pairs.iter().map(|p| &task.source_train[p.source]).collect();
        let tgt_refs: Vec<&Sample> = pairs.iter().map(|p| &task.target_train[p.target]).collect();
        let (src_imgs, _) = stack(&src_refs);
        let (tgt_imgs, _) = stack(&tgt_refs);
        let labels: Vec<usize> = pairs.iter().map(|p| p.label).collect();
        let globals: Vec<usize> = labels
            .iter()
            .map(|&l| self.model.class_offset(t) + l)
            .collect();

        let mut g = std::mem::take(&mut self.step_graph);
        g.reset_for_step();
        let xs = g.input(src_imgs);
        let xt = g.input(tgt_imgs);
        let zs = self.model.features_self(&mut g, xs, t);
        let zt = self.model.features_self(&mut g, xt, t);
        // The "simple attention" ablation removes the mixed cross-attention
        // signal entirely; the source stream stands in for it.
        let zm = if self.config.cross_attention {
            self.model.features_cross(&mut g, xs, xt, t)
        } else {
            zs
        };

        let mut loss: Option<Var> = None;
        let add = |g: &mut Graph, loss: &mut Option<Var>, l: Var| {
            *loss = Some(match *loss {
                Some(prev) => g.add(prev, l),
                None => l,
            });
        };
        // Per-term loss vars retained for telemetry; the aggregation into
        // `loss` is unchanged, so the graph (and its rounding) is identical
        // whether or not tracing is on.
        let mut l_til: Option<Var> = None;
        let mut l_cil: Option<Var> = None;
        let mut l_reh: Vec<Var> = Vec::new();
        if self.config.losses.til {
            let l = self.loss_triple(&mut g, zs, zt, zm, &labels, Some(t));
            l_til = Some(l);
            add(&mut g, &mut loss, l);
        }
        if self.config.losses.cil {
            let l = self.loss_triple(&mut g, zs, zt, zm, &globals, None);
            l_cil = Some(l);
            add(&mut g, &mut loss, l);
        }
        if self.config.losses.rehearsal && !self.memory.is_empty() {
            let _replay = telemetry::span("replay").task(t).epoch(epoch);
            let idx = self
                .memory
                .replay_indices(self.replay_cursor, self.config.rehearsal_batch);
            self.replay_cursor = self.replay_cursor.wrapping_add(idx.len());
            // Group by origin task so each group uses its frozen keys.
            let mut by_task: Vec<(usize, Vec<&MemoryRecord>)> = Vec::new();
            for &i in &idx {
                let r = &self.memory.records()[i];
                match by_task.iter_mut().find(|(t, _)| *t == r.task) {
                    Some((_, v)) => v.push(r),
                    None => by_task.push((r.task, vec![r])),
                }
            }
            for (_, group) in &by_task {
                if let Some(l) = self.rehearsal_loss(&mut g, group) {
                    l_reh.push(l);
                    add(&mut g, &mut loss, l);
                }
            }
        }
        let Some(loss) = loss else {
            self.step_graph = g;
            return;
        };
        self.optimizer.zero_grad();
        g.backward(loss);
        self.verify_first_graph(&g, loss, t, epoch);
        if telemetry::enabled() {
            let scalar = |name: &str, v: f64| {
                telemetry::Event::new("scalar")
                    .name(name)
                    .task(t)
                    .epoch(epoch)
                    .step(step)
                    .value(v)
                    .emit();
            };
            if let Some(l) = l_til {
                scalar("loss_til", f64::from(g.value(l).item()));
            }
            if let Some(l) = l_cil {
                scalar("loss_cil", f64::from(g.value(l).item()));
            }
            if !l_reh.is_empty() {
                let v: f64 = l_reh.iter().map(|&l| f64::from(g.value(l).item())).sum();
                scalar("loss_rehearsal", v);
            }
            let total = f64::from(g.value(loss).item());
            scalar("loss_total", total);
            self.trace_step(
                "loss_total",
                total,
                telemetry::WatchdogCtx {
                    phase: "adaptation",
                    task: t,
                    epoch,
                    step,
                },
            );
        }
        if cdcl_obs::enabled() {
            health::STEPS_TOTAL.inc();
            health::LOSS.set(f64::from(g.value(loss).item()));
            health::GRAD_NORM.set(self.grad_norm());
        }
        self.optimizer.step(lr);
        self.step_graph = g;
    }

    /// Rebuilds centroids, pseudo-labels, and the pair set for the epoch
    /// (Eqs. 17–19). Falls back to index-aligned pairing when no pair
    /// survives the label filter (never returns an empty set for non-empty
    /// data).
    fn refresh_pairs(&mut self, task: &TaskData, epoch: usize) -> Vec<Pair> {
        let t = task.task_id;
        let src_feats = self.extract_features(&task.source_train, t);
        let src_labels: Vec<usize> = task.source_train.iter().map(|s| s.label).collect();
        let tgt_feats = self.extract_features(&task.target_train, t);
        let tgt_probs = self.til_probabilities(&task.target_train, t);
        let (centroids, first) = {
            let _s = telemetry::span("centroid_fit").task(t).epoch(epoch);
            let c = weighted_centroids(&tgt_probs, &tgt_feats);
            let p = nearest_centroid_labels(&tgt_feats, &c);
            (c, p)
        };
        // Second center-aware round (as in SHOT [26], which §IV-B extends):
        // rebuild the centroids from the hard assignments and re-assign —
        // stabilises the labels when the warm-up classifier is weak.
        let pseudo = {
            let _s = telemetry::span("pseudo_assign").task(t).epoch(epoch);
            let hard = cdcl_tensor::Tensor::one_hot(&first, centroids.shape()[0]);
            let centroids = weighted_centroids(&hard, &tgt_feats);
            let labels = nearest_centroid_labels(&tgt_feats, &centroids);
            // Keep the refined centroids: the last epoch's set is promoted
            // into `self.centroids` at task end and persisted in snapshots.
            self.last_centroids = Some(centroids);
            labels
        };
        if telemetry::enabled() || cdcl_obs::enabled() {
            // How much the assignments moved between the two rounds: high
            // flip rates flag unstable centroids / noisy pseudo-labels.
            let flip = label_flip_rate(&first, &pseudo);
            health::PSEUDO_FLIP_RATE.set(flip);
            if telemetry::enabled() {
                telemetry::Event::new("scalar")
                    .name("pseudo_flip_rate")
                    .task(t)
                    .epoch(epoch)
                    .value(flip)
                    .emit();
            }
        }
        let pairs = {
            let _s = telemetry::span("pair_filter").task(t).epoch(epoch);
            build_pairs(&src_feats, &src_labels, &tgt_feats, &pseudo)
        };
        if telemetry::enabled() || cdcl_obs::enabled() {
            // Eq. 19 agreement: the fraction of target samples whose
            // pseudo-label found a matching source sample.
            let denom = task.target_train.len().max(1) as f64;
            let agreement = pairs.len() as f64 / denom;
            health::PAIR_AGREEMENT.set(agreement);
            if telemetry::enabled() {
                telemetry::Event::new("scalar")
                    .name("pair_agreement")
                    .task(t)
                    .epoch(epoch)
                    .value(agreement)
                    .emit();
            }
        }
        if !pairs.is_empty() {
            return pairs;
        }
        // Degenerate fallback (e.g. a collapsed warm-up): pair by index.
        (0..task.target_train.len().min(task.source_train.len()))
            .map(|i| Pair {
                source: i,
                target: i,
                label: task.source_train[i].label,
            })
            .collect()
    }

    /// Builds memory candidates from the final pair set, scoring each by
    /// intra-task confidence `max(y_S^TIL) ∨ max(y_T^TIL)` and recording
    /// current CIL probabilities for logit replay.
    fn memory_candidates(&self, task: &TaskData) -> Vec<MemoryRecord> {
        let t = task.task_id;
        let pairs = &self.last_pairs;
        self.eval_chunks(pairs.len(), |range| {
            let chunk = &pairs[range];
            let src_refs: Vec<&Sample> =
                chunk.iter().map(|p| &task.source_train[p.source]).collect();
            let tgt_refs: Vec<&Sample> =
                chunk.iter().map(|p| &task.target_train[p.target]).collect();
            let (src_imgs, _) = stack(&src_refs);
            let (tgt_imgs, _) = stack(&tgt_refs);
            let til_s = self.model.predict_til(&src_imgs, t);
            let til_t = self.model.predict_til(&tgt_imgs, t);
            let cil_s = self.model.predict_cil(&src_imgs);
            let cil_t = self.model.predict_cil(&tgt_imgs);
            let u = til_s.shape()[1];
            let total = cil_s.shape()[1];
            let mut out = Vec::with_capacity(chunk.len());
            for (i, p) in chunk.iter().enumerate() {
                let conf_s = til_s.data()[i * u..(i + 1) * u]
                    .iter()
                    .copied()
                    .fold(0.0f32, f32::max);
                let conf_t = til_t.data()[i * u..(i + 1) * u]
                    .iter()
                    .copied()
                    .fold(0.0f32, f32::max);
                out.push(MemoryRecord {
                    task: t,
                    x_source: src_refs[i].image.clone(),
                    x_target: tgt_refs[i].image.clone(),
                    label: p.label,
                    global_label: self.model.class_offset(t) + p.label,
                    cil_probs_source: cil_s.data()[i * total..(i + 1) * total].to_vec(),
                    cil_probs_target: cil_t.data()[i * total..(i + 1) * total].to_vec(),
                    confidence: conf_s.max(conf_t),
                });
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Crash-safe checkpointing: when `CDCL_CKPT_DIR` is set, every
    /// finished task writes `task{NNN}.cdclsnap` there through the
    /// atomic write-temp-then-rename helper, under the `checkpoint`
    /// telemetry span. A crash mid-write leaves the previous snapshot
    /// intact; [`CdclTrainer::resume_latest`] picks up from the newest
    /// complete one.
    fn maybe_checkpoint(&self, task: usize) {
        let Some(dir) = std::env::var_os("CDCL_CKPT_DIR") else {
            return;
        };
        let _s = telemetry::span("checkpoint").task(task);
        let path = std::path::PathBuf::from(dir).join(format!("task{task:03}.cdclsnap"));
        let bytes = self.snapshot_bytes();
        if telemetry::enabled() {
            telemetry::Event::new("checkpoint")
                .task(task)
                .u64_field("snapshot_bytes", bytes.len() as u64)
                .str_field("path", &path.to_string_lossy())
                .emit();
        }
        if let Err(e) = cdcl_snapshot::atomic_write(&path, &bytes) {
            // lint-allow: checkpoint escalation — the user explicitly asked
            // for durable checkpoints via CDCL_CKPT_DIR; silently dropping
            // one is data loss, so fail fast (same contract as the
            // telemetry trace file).
            panic!("checkpoint write failed for {}: {e}", path.display());
        }
    }
}

impl ContinualLearner for CdclTrainer {
    fn name(&self) -> String {
        let l = &self.config.losses;
        let mut name = "CDCL".to_string();
        if !l.cil {
            name.push_str("-noCIL");
        }
        if !l.til {
            name.push_str("-noTIL");
        }
        if !l.rehearsal {
            name.push_str("-noR");
        }
        if !self.config.cross_attention {
            name.push_str("-simpleAttn");
        }
        name
    }

    fn learn_task(&mut self, task: &TaskData) {
        assert_eq!(
            task.task_id,
            self.model.num_tasks(),
            "tasks must arrive in order"
        );
        self.model.add_task(&mut self.rng, task.num_classes());
        self.optimizer.rebind(self.model.params());
        self.last_pairs.clear();
        self.last_centroids = None;
        // Re-verify on the new task's first graph: add_task changed the
        // frozen set and the head shapes.
        self.graph_verified = false;
        let counters_before = telemetry::enabled().then(kernels::counter_snapshot);

        let schedule = WarmupCosine {
            warmup_lr: self.config.warmup_lr,
            peak_lr: self.config.peak_lr,
            min_lr: self.config.min_lr,
            warmup_epochs: self.config.warmup_epochs,
            total_epochs: self.config.epochs,
        };
        let mut src_batcher = Batcher::new(
            task.source_train.len(),
            self.config.batch_size,
            self.config.seed ^ (task.task_id as u64) << 16,
        );

        for epoch in 0..self.config.epochs {
            let lr = schedule.lr(epoch);
            if epoch < self.config.warmup_epochs {
                let _s = telemetry::span("warmup").task(task.task_id).epoch(epoch);
                for (step, batch) in src_batcher.epoch().into_iter().enumerate() {
                    self.warmup_step(task, &batch, lr, epoch, step);
                }
            } else {
                // Eqs. 17–19: rebuild centroids/pseudo-labels every epoch.
                let pairs = self.refresh_pairs(task, epoch);
                let _s = telemetry::span("adaptation")
                    .task(task.task_id)
                    .epoch(epoch);
                let mut pair_batcher = Batcher::new(
                    pairs.len(),
                    self.config.batch_size,
                    self.config.seed ^ ((task.task_id as u64) << 16 | epoch as u64),
                );
                for (step, batch) in pair_batcher.epoch().into_iter().enumerate() {
                    let subset: Vec<Pair> = batch.iter().map(|&i| pairs[i]).collect();
                    self.adaptation_step(task, &subset, lr, epoch, step);
                }
                self.last_pairs = pairs;
            }
            if cdcl_obs::enabled() {
                health::MEMORY_OCCUPANCY.set(self.memory.records().len() as f64);
                health::MEMORY_CAPACITY.set(self.memory.capacity() as f64);
                health::emit_health_event(task.task_id, epoch);
            }
        }
        if self.last_pairs.is_empty() {
            // All-warm-up configuration: fall back to index pairing so the
            // memory still receives records.
            self.last_pairs = (0..task.target_train.len().min(task.source_train.len()))
                .map(|i| Pair {
                    source: i,
                    target: i,
                    label: task.source_train[i].label,
                })
                .collect();
        }
        let candidates = {
            let _s = telemetry::span("memory_select").task(task.task_id);
            self.memory_candidates(task)
        };
        self.memory.finish_task(task.task_id, candidates);
        // Promote the last adaptation epoch's refined centroids (Eq. 17) to
        // the per-task archive; an all-warm-up task stores an empty `[0, d]`
        // marker so indices stay aligned with task ids.
        let d = self.model.backbone().embed_dim();
        self.centroids.push(
            self.last_centroids
                .take()
                .unwrap_or_else(|| Tensor::zeros(&[0, d])),
        );
        if cdcl_obs::enabled() {
            health::TASKS_TOTAL.inc();
            health::MEMORY_OCCUPANCY.set(self.memory.records().len() as f64);
            health::MEMORY_CAPACITY.set(self.memory.capacity() as f64);
            kernels::publish_registry();
        }
        if let Some(before) = counters_before {
            let d = kernels::counter_snapshot().delta_since(&before);
            telemetry::Event::new("counters")
                .task(task.task_id)
                .u64_field("gemm_calls", d.gemm_calls)
                .u64_field("gemm_fmas", d.gemm_fmas)
                .u64_field("pool_spawns", d.pool_spawns)
                .emit();
        }
        self.maybe_checkpoint(task.task_id);
    }

    fn eval_til(&self, task_id: usize, test: &[Sample]) -> f64 {
        let _s = telemetry::span("eval_til").task(task_id);
        let predictions: Vec<usize> = self
            .eval_chunks(test.len(), |range| {
                let idx: Vec<usize> = range.collect();
                let (imgs, _) = Self::stack_batch(test, &idx);
                self.model.predict_til(&imgs, task_id).argmax_last()
            })
            .into_iter()
            .flatten()
            .collect();
        accuracy_from_predictions(&predictions, test)
    }

    fn eval_cil(&self, task_id: usize, test: &[Sample]) -> f64 {
        let _s = telemetry::span("eval_cil").task(task_id);
        let offset = self.model.class_offset(task_id);
        let hits: usize = self
            .eval_chunks(test.len(), |range| {
                let idx: Vec<usize> = range.collect();
                let (imgs, labels) = Self::stack_batch(test, &idx);
                let pred = self.model.predict_cil(&imgs).argmax_last();
                pred.iter()
                    .zip(labels.iter())
                    .filter(|&(p, l)| *p == offset + l)
                    .count()
            })
            .into_iter()
            .sum();
        if test.is_empty() {
            0.0
        } else {
            hits as f64 / test.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trainer_constructs_with_defaults() {
        let t = CdclTrainer::new(CdclConfig::smoke());
        assert_eq!(t.model().num_tasks(), 0);
        assert_eq!(t.memory().capacity(), 60);
        assert_eq!(t.name(), "CDCL");
    }

    #[test]
    fn ablated_names_reflect_toggles() {
        let mut c = CdclConfig::smoke();
        c.losses.rehearsal = false;
        assert_eq!(CdclTrainer::new(c).name(), "CDCL-noR");
        let mut c = CdclConfig::smoke();
        c.losses.cil = false;
        c.losses.til = false;
        assert_eq!(CdclTrainer::new(c).name(), "CDCL-noCIL-noTIL");
        let mut c = CdclConfig::smoke();
        c.cross_attention = false;
        assert_eq!(CdclTrainer::new(c).name(), "CDCL-simpleAttn");
    }

    #[test]
    #[should_panic(expected = "tasks must arrive in order")]
    fn out_of_order_task_panics() {
        let mut t = CdclTrainer::new(CdclConfig::smoke());
        let task = TaskData {
            task_id: 3,
            global_classes: vec![0, 1],
            source_train: vec![],
            target_train: vec![],
            target_test: vec![],
        };
        t.learn_task(&task);
    }
}
