//! Basic layers: `Linear`, `Conv2dLayer`, `LayerNorm`, the CCT convolutional
//! tokenizer (Eq. 1), and sequence pooling (Eqs. 4–6).

use cdcl_autograd::{Graph, Param, Var};
use cdcl_tensor::{Conv2dSpec, Pool2dSpec, Tensor};
use rand::Rng;

use crate::init::xavier_uniform;
use crate::Module;

/// Fully connected layer `y = x W + b`. Accepts `[b, in]` or `[b, n, in]`
/// inputs (the latter applies the layer token-wise).
pub struct Linear {
    w: Param,
    b: Option<Param>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// New layer with Xavier-initialised weight and zero bias.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = Param::new(
            format!("{name}.w"),
            xavier_uniform(rng, &[in_dim, out_dim], in_dim, out_dim),
        );
        let b = bias.then(|| Param::new(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// Applies the layer on the tape.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.w);
        let y = g.matmul(x, w);
        match &self.b {
            Some(b) => {
                let b = g.param(b);
                g.add(y, b)
            }
            None => y,
        }
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.w.clone()];
        if let Some(b) = &self.b {
            p.push(b.clone());
        }
        p
    }
}

/// Convolution layer wrapping [`cdcl_autograd::Graph::conv2d`].
pub struct Conv2dLayer {
    w: Param,
    b: Param,
    spec: Conv2dSpec,
}

impl Conv2dLayer {
    /// New conv layer `[c_out, c_in, k, k]` with Xavier init.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        name: &str,
        c_in: usize,
        c_out: usize,
        spec: Conv2dSpec,
    ) -> Self {
        let k = spec.kernel;
        let fan_in = c_in * k * k;
        let fan_out = c_out * k * k;
        Self {
            w: Param::new(
                format!("{name}.w"),
                xavier_uniform(rng, &[c_out, c_in, k, k], fan_in, fan_out),
            ),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[c_out])),
            spec,
        }
    }

    /// Applies the convolution on the tape.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        g.conv2d(x, w, Some(b), self.spec)
    }

    /// The convolution spec.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

impl Module for Conv2dLayer {
    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Layer normalisation over the last axis with learnable affine.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// New layer-norm over a `d`-dimensional last axis.
    pub fn new(name: &str, d: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[d])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[d])),
            eps: 1e-5,
        }
    }

    /// Applies the normalisation on the tape.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// The CCT convolutional tokenizer (paper Eq. 1):
/// `x_ct = MaxPool(ReLU(Conv2d(x)))`, repeated `stages` times, with the last
/// stage emitting `d` channels. The `[b, d, h, w]` activation map is then
/// flattened to a `[b, n, d]` token sequence (`n = h·w`).
pub struct ConvTokenizer {
    stages: Vec<Conv2dLayer>,
    pool: Pool2dSpec,
    in_hw: (usize, usize),
    in_channels: usize,
    token_count: usize,
    embed_dim: usize,
}

impl ConvTokenizer {
    /// Builds a tokenizer.
    ///
    /// * `in_channels`, `in_hw` — input image layout.
    /// * `embed_dim` — `d`, the transformer embedding size (channel count of
    ///   the final stage; intermediate stages use `embed_dim / 2`).
    /// * `stages` — number of conv+pool stages (the paper uses 2).
    /// * `kernel` — conv kernel size (the paper uses 7×7 for the large model,
    ///   we default to 3×3 at small resolutions; padding keeps spatial size).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        in_hw: (usize, usize),
        embed_dim: usize,
        stages: usize,
        kernel: usize,
    ) -> Self {
        assert!(stages >= 1, "tokenizer needs at least one stage");
        let pool = Pool2dSpec {
            kernel: 2,
            stride: 2,
        };
        let conv_spec = Conv2dSpec {
            kernel,
            stride: 1,
            padding: kernel / 2,
        };
        let mut convs = Vec::with_capacity(stages);
        let mut c_in = in_channels;
        let (mut h, mut w) = in_hw;
        for s in 0..stages {
            let c_out = if s + 1 == stages {
                embed_dim
            } else {
                (embed_dim / 2).max(1)
            };
            convs.push(Conv2dLayer::new(
                rng,
                &format!("tokenizer.conv{s}"),
                c_in,
                c_out,
                conv_spec,
            ));
            let (ch, cw) = conv_spec.out_hw(h, w);
            let (ph, pw) = pool.out_hw(ch, cw);
            h = ph;
            w = pw;
            c_in = c_out;
        }
        Self {
            stages: convs,
            pool,
            in_hw,
            in_channels,
            token_count: h * w,
            embed_dim,
        }
    }

    /// Number of tokens `n` the tokenizer emits per image.
    pub fn token_count(&self) -> usize {
        self.token_count
    }

    /// Embedding dimension `d`.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Expected input layout `(channels, (h, w))`.
    pub fn input_layout(&self) -> (usize, (usize, usize)) {
        (self.in_channels, self.in_hw)
    }

    /// Tokenizes `x: [b, c, h, w]` into `[b, n, d]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let mut h = x;
        for conv in &self.stages {
            h = conv.forward(g, h);
            h = g.relu(h);
            h = g.maxpool2d(h, self.pool);
        }
        // [b, d, h, w] -> [b, d, n] -> [b, n, d]
        let shape = g.value(h).shape().to_vec();
        let (b, d, hh, ww) = (shape[0], shape[1], shape[2], shape[3]);
        let h = g.reshape(h, &[b, d, hh * ww]);
        g.transpose_last2(h)
    }
}

impl Module for ConvTokenizer {
    fn params(&self) -> Vec<Param> {
        self.stages.iter().flat_map(Module::params).collect()
    }
}

/// Attention-based sequence pooling (paper Eqs. 4–6):
/// `z = softmax(g(x_L)ᵀ) · x_L`, where `g` is a learned `d → 1` map.
pub struct SeqPool {
    g: Linear,
}

impl SeqPool {
    /// New pooling head for embedding dimension `d`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Self {
        Self {
            g: Linear::new(rng, "seqpool.g", d, 1, true),
        }
    }

    /// Pools `x: [b, n, d]` into `[b, d]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let shape = g.value(x).shape().to_vec();
        let (b, d) = (shape[0], shape[2]);
        let scores = self.g.forward(g, x); // [b, n, 1]
        let scores = g.transpose_last2(scores); // [b, 1, n]
        let weights = g.softmax_last(scores); // Eq. 4
        let z = g.matmul(weights, x); // Eq. 5: [b, 1, d]
        g.reshape(z, &[b, d]) // flatten (Eq. 6)
    }
}

impl Module for SeqPool {
    fn params(&self) -> Vec<Param> {
        self.g.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_2d_and_3d() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lin = Linear::new(&mut rng, "l", 4, 6, true);
        let mut g = Graph::new();
        let x2 = g.input(Tensor::zeros(&[3, 4]));
        let y2 = lin.forward(&mut g, x2);
        assert_eq!(g.value(y2).shape(), &[3, 6]);
        let x3 = g.input(Tensor::zeros(&[2, 5, 4]));
        let y3 = lin.forward(&mut g, x3);
        assert_eq!(g.value(y3).shape(), &[2, 5, 6]);
        assert_eq!(lin.num_parameters(), 4 * 6 + 6);
    }

    #[test]
    fn linear_zero_bias_initially() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lin = Linear::new(&mut rng, "l", 3, 2, true);
        // y(0) = b = 0
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 3]));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).data(), &[0.0, 0.0]);
    }

    #[test]
    fn tokenizer_emits_expected_tokens() {
        let mut rng = SmallRng::seed_from_u64(3);
        // 16x16 input, 2 stages of /2 pooling -> 4x4 = 16 tokens.
        let tok = ConvTokenizer::new(&mut rng, 1, (16, 16), 8, 2, 3);
        assert_eq!(tok.token_count(), 16);
        assert_eq!(tok.embed_dim(), 8);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 1, 16, 16]));
        let t = tok.forward(&mut g, x);
        assert_eq!(g.value(t).shape(), &[2, 16, 8]);
    }

    #[test]
    fn tokenizer_single_stage() {
        let mut rng = SmallRng::seed_from_u64(4);
        let tok = ConvTokenizer::new(&mut rng, 3, (8, 8), 4, 1, 3);
        assert_eq!(tok.token_count(), 16); // 8/2 = 4 -> 4x4
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 3, 8, 8]));
        let t = tok.forward(&mut g, x);
        assert_eq!(g.value(t).shape(), &[1, 16, 4]);
    }

    #[test]
    fn seqpool_output_shape_and_convexity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pool = SeqPool::new(&mut rng, 4);
        let mut g = Graph::new();
        // All tokens identical -> pooled output equals that token regardless
        // of the attention weights (convex combination).
        let token = [1.0f32, -2.0, 0.5, 3.0];
        let mut data = Vec::new();
        for _ in 0..5 {
            data.extend_from_slice(&token);
        }
        let x = g.input(Tensor::from_vec(data, &[1, 5, 4]));
        let z = pool.forward(&mut g, x);
        assert_eq!(g.value(z).shape(), &[1, 4]);
        cdcl_tensor::assert_close(g.value(z).data(), &token, 1e-5);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new("ln", 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        let y = ln.forward(&mut g, x);
        let out = g.value(y);
        assert!(out.mean().abs() < 1e-5);
        let var = out.map(|v| v * v).mean();
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn conv_layer_preserves_spatial_with_padding() {
        let mut rng = SmallRng::seed_from_u64(6);
        let spec = Conv2dSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let conv = Conv2dLayer::new(&mut rng, "c", 2, 5, spec);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 2, 7, 7]));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 5, 7, 7]);
    }
}
