//! CDCL hyper-parameters, including the loss toggles used by the Table IV
//! ablation study.

use cdcl_nn::BackboneConfig;
use serde::{Deserialize, Serialize};

/// Which loss blocks are active — the ablation axes of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossToggles {
    /// Inter-task losses `L^CIL` (Eq. 15).
    pub cil: bool,
    /// Intra-task losses `L^TIL` (Eq. 16).
    pub til: bool,
    /// Rehearsal losses `L_R` (Eq. 23).
    pub rehearsal: bool,
}

impl Default for LossToggles {
    fn default() -> Self {
        Self {
            cil: true,
            til: true,
            rehearsal: true,
        }
    }
}

/// Full training configuration for [`crate::CdclTrainer`].
#[derive(Debug, Clone, Copy)]
pub struct CdclConfig {
    /// Backbone architecture.
    pub backbone: BackboneConfig,
    /// Epochs per task (paper: 125).
    pub epochs: usize,
    /// Source-only warm-up epochs at the start of each task (paper: 25).
    pub warmup_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Rehearsal memory capacity in records (paper: 1000).
    pub memory_size: usize,
    /// Rehearsal mini-batch size.
    pub rehearsal_batch: usize,
    /// Warm-up learning rate (paper: 1e-5; scaled up for the small models).
    pub warmup_lr: f32,
    /// Cosine-annealing peak learning rate (paper: 5e-5; scaled up).
    pub peak_lr: f32,
    /// Cosine floor (paper: 1e-6).
    pub min_lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// Loss ablation toggles.
    pub losses: LossToggles,
    /// Use the cross-attention mixed signal (Eq. 3). `false` reproduces the
    /// paper's "simple attention" ablation row: the network only ever
    /// self-attends on single-domain inputs and the alignment losses fall
    /// back to source-prediction teachers — the paper observes this variant
    /// degenerates to DER/DER++-level behaviour (§V-E).
    pub cross_attention: bool,
    /// Master seed for model init, batching, and pair sampling.
    pub seed: u64,
}

impl Default for CdclConfig {
    fn default() -> Self {
        Self {
            backbone: BackboneConfig::default(),
            epochs: 10,
            warmup_epochs: 3,
            batch_size: 16,
            // Small relative to the stream: replay must not trivially cover
            // the whole history (the paper's 1000 records vs tens of
            // thousands of images is a few percent).
            memory_size: 32,
            rehearsal_batch: 16,
            // The paper's LRs target its 14-layer/224px model over 125
            // epochs; the scaled-down substrate needs proportionally larger
            // steps to converge in ~10 epochs. The *shape* of the schedule
            // (flat warm-up, cosine to a floor) is the paper's.
            warmup_lr: 1e-3,
            peak_lr: 3e-3,
            min_lr: 1e-4,
            weight_decay: 0.01,
            losses: LossToggles::default(),
            cross_attention: true,
            seed: 0,
        }
    }
}

impl CdclConfig {
    /// Fast configuration for unit/integration tests.
    ///
    /// Warm-up must be long enough that source-side supervision converges
    /// before the adaptation phase starts trusting pseudo-labels; with fewer
    /// than ~4 warm-up epochs the pairing step can lock in wrong labels and
    /// the task never recovers.
    pub fn smoke() -> Self {
        Self {
            epochs: 10,
            warmup_epochs: 5,
            batch_size: 16,
            memory_size: 60,
            ..Self::default()
        }
    }

    /// The paper's published hyper-parameters (§V-B) on the paper-sized
    /// backbone. Constructible for completeness; far too slow to run on one
    /// CPU core.
    pub fn paper_large() -> Self {
        Self {
            backbone: BackboneConfig::paper_large(),
            epochs: 125,
            warmup_epochs: 25,
            batch_size: 32,
            memory_size: 1000,
            rehearsal_batch: 32,
            warmup_lr: 1e-5,
            peak_lr: 5e-5,
            min_lr: 1e-6,
            weight_decay: 0.01,
            losses: LossToggles::default(),
            cross_attention: true,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_losses() {
        let c = CdclConfig::default();
        assert!(c.losses.cil && c.losses.til && c.losses.rehearsal);
        assert!(c.warmup_epochs < c.epochs);
    }

    #[test]
    fn paper_config_matches_published_values() {
        let c = CdclConfig::paper_large();
        assert_eq!(c.epochs, 125);
        assert_eq!(c.warmup_epochs, 25);
        assert_eq!(c.memory_size, 1000);
        assert_eq!(c.warmup_lr, 1e-5);
        assert_eq!(c.peak_lr, 5e-5);
        assert_eq!(c.min_lr, 1e-6);
        assert_eq!(c.backbone.depth, 14);
    }
}
