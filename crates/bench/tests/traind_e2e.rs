//! End-to-end test of the closed train→serve loop (DESIGN.md §15): an
//! in-process `cdcl-serve` starting EMPTY and an in-process `cdcl-traind`
//! wired to it, fed a streamed two-task scenario with **no task boundaries
//! given**. The daemon must bootstrap task 0 from the stream, publish it
//! (serve goes live at version 1), detect the unannounced task switch from
//! drift alone, infer the boundary matching the generator's ground truth,
//! run the online round, and hot-publish task 1 (serve stamps version 2) —
//! all while a live prediction client hammers the serve instance and
//! loses not a single in-flight request.

use cdcl_bench::serve::registry::SnapshotRegistry;
use cdcl_bench::serve::{ServeArgs, ServeStats};
use cdcl_bench::traind::{build_trainer, run_tcp, TraindArgs, TraindDaemon};
use cdcl_core::DriftConfig;
use cdcl_data::{DomainPairConfig, Sample, TaskData};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Serialized with the other heavy TCP tests in the crate (worker threads
/// plus two training rounds on a small CI box).
static TRAIND_GUARD: Mutex<()> = Mutex::new(());

fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
    v.field(name)
        .unwrap_or_else(|| panic!("missing field {name:?} in {v:?}"))
}

fn field_u64(v: &Value, name: &str) -> u64 {
    match field(v, name) {
        Value::Num(n) => *n as u64,
        other => panic!("field {name:?} is not a number: {other:?}"),
    }
}

fn field_bool(v: &Value, name: &str) -> bool {
    match field(v, name) {
        Value::Bool(b) => *b,
        other => panic!("field {name:?} is not a bool: {other:?}"),
    }
}

/// The streamed scenario: two tasks over the same label set with a strong
/// per-task rendering drift — physically distinct, never announced.
fn scenario(seed: u64) -> cdcl_data::CrossDomainStream {
    DomainPairConfig {
        name: "traind-e2e".to_string(),
        num_classes: 4,
        tasks: 2,
        channels: 1,
        hw: (8, 8),
        latent_dim: 6,
        domain_gap: 0.5,
        task_drift: 0.9,
        within_class_std: 0.25,
        source_noise_std: 0.05,
        target_noise_std: 0.05,
        train_per_class: 24,
        target_train_per_class: 24,
        test_per_class: 2,
        seed,
    }
    .generate()
}

fn ingest_line(role: &str, label: Option<usize>, image: &[f32]) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{{\"role\":\"{role}\"");
    if let Some(l) = label {
        let _ = write!(line, ",\"label\":{l}");
    }
    line.push_str(",\"image\":[");
    for (i, x) in image.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{x}");
    }
    line.push_str("]}");
    line
}

/// Streams one window of `task` samples (round-robin slice) and returns
/// the parsed commit ack.
fn commit_window(
    writer: &mut BufWriter<TcpStream>,
    reader: &mut BufReader<TcpStream>,
    task: &TaskData,
    window_in_task: usize,
    per_window: usize,
) -> Value {
    fn pick(pool: &[Sample], start: usize, n: usize) -> Vec<&Sample> {
        (0..n).map(|j| &pool[(start + j) % pool.len()]).collect()
    }
    let start = window_in_task * per_window;
    for s in pick(&task.source_train, start, per_window) {
        writeln!(
            writer,
            "{}",
            ingest_line("source", Some(s.label), s.image.data())
        )
        .expect("send source");
    }
    for s in pick(&task.target_train, start, per_window) {
        writeln!(writer, "{}", ingest_line("target", None, s.image.data())).expect("send target");
    }
    writeln!(writer).expect("send commit");
    writer.flush().expect("flush commit");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read ack");
    let ack: Value = serde_json::from_str(line.trim())
        .unwrap_or_else(|e| panic!("bad ack {:?}: {e}", line.trim()));
    assert!(field_bool(&ack, "ok"), "commit refused: {}", line.trim());
    ack
}

/// Asserts the ack's publish block is fully verified at the expected
/// version / task count against exactly one notify target.
fn assert_publish(ack: &Value, version: u64, tasks: u64) {
    let publish = field(ack, "publish");
    assert!(
        !matches!(publish, Value::Null),
        "no publish in round ack: {ack:?}"
    );
    assert!(field_bool(publish, "ok"), "publish failed: {publish:?}");
    let reloads = match field(publish, "reloads") {
        Value::Arr(rows) => rows,
        other => panic!("reloads is not an array: {other:?}"),
    };
    assert_eq!(reloads.len(), 1);
    assert_eq!(field_u64(&reloads[0], "version"), version, "{publish:?}");
    assert_eq!(field_u64(&reloads[0], "tasks"), tasks, "{publish:?}");
    assert_eq!(
        field_u64(&reloads[0], "centroid_tasks"),
        tasks,
        "{publish:?}"
    );
}

/// The full closed loop: empty serve + traind + boundary-free stream.
#[test]
fn closed_loop_detects_trains_and_publishes_live() {
    let _g = TRAIND_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    cdcl_obs::set_enabled(true);
    let stream = scenario(11);
    let per_window = 6;
    let (bootstrap, clean, max_shift) = (2usize, 6usize, 10usize);
    let switch_window = (bootstrap + clean) as u64; // ground truth

    // Serve side: an EMPTY registry — the first published checkpoint
    // creates the model slot at version 1 (the `--empty-ok` path).
    let registry = SnapshotRegistry::new(0);
    let serve_listener = TcpListener::bind("127.0.0.1:0").expect("bind serve");
    let serve_addr = serve_listener.local_addr().expect("serve addr").to_string();
    let serve_args = ServeArgs {
        bench_out: None,
        empty_ok: true,
        // Two publish connections from traind plus the live client.
        conns: 3,
        threads: 2,
        max_batch: 4,
        ..ServeArgs::default()
    };
    let serve_stats = ServeStats::default();

    // Traind side: fresh zero-task trainer, defaults injected explicitly
    // so the test is independent of the CDCL_TRAIND_* environment.
    let publish_dir = std::env::temp_dir().join(format!("traind-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&publish_dir);
    std::fs::create_dir_all(&publish_dir).expect("create publish dir");
    let traind_args = TraindArgs {
        notify: vec![serve_addr.clone()],
        publish_dir: publish_dir.clone(),
        threads: 1,
        conns: 1,
        bootstrap_windows: bootstrap,
        ..TraindArgs::default()
    };
    let trainer = build_trainer(&traind_args).expect("fresh trainer");
    let dims = trainer.input_dims();
    let daemon = TraindDaemon::with_drift_config(traind_args, trainer, DriftConfig::default());
    let traind_listener = TcpListener::bind("127.0.0.1:0").expect("bind traind");
    let traind_addr = traind_listener.local_addr().expect("traind addr");

    let serving_v1 = AtomicBool::new(false);
    let stop_load = AtomicBool::new(false);
    let final_status = std::thread::scope(|s| {
        let (registry, serve_args, serve_stats) = (&registry, &serve_args, &serve_stats);
        s.spawn(move || {
            cdcl_bench::serve::run_tcp(registry, serve_listener, serve_args, serve_stats)
        });
        let daemon = &daemon;
        s.spawn(move || run_tcp(daemon, traind_listener));

        // Live prediction client: starts once version 1 is being served,
        // then sends requests one at a time right through the version-2
        // hot reload. Every request must be answered, none dropped.
        let (serving_v1, stop_load) = (&serving_v1, &stop_load);
        let serve_addr_for_load = serve_addr.clone();
        let load = s.spawn(move || {
            while !serving_v1.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let conn = TcpStream::connect(&serve_addr_for_load).expect("connect load client");
            let mut reader = BufReader::new(conn.try_clone().expect("clone load client"));
            let mut writer = BufWriter::new(conn);
            let zeros = vec!["0.0"; dims.0 * dims.1 * dims.2].join(",");
            let mut line = String::new();
            let mut answered = 0u64;
            let mut seen_versions = Vec::new();
            loop {
                writeln!(
                    writer,
                    "{{\"id\":{answered},\"mode\":\"cil\",\"image\":[{zeros}]}}"
                )
                .expect("send request");
                writeln!(writer).expect("send flush line");
                writer.flush().expect("flush request");
                line.clear();
                let n = reader.read_line(&mut line).expect("read response");
                assert!(n > 0, "serve dropped an in-flight request");
                let resp: Value = serde_json::from_str(line.trim()).expect("response is JSON");
                assert!(field_bool(&resp, "ok"), "request failed: {}", line.trim());
                let version = field_u64(&resp, "version");
                if seen_versions.last() != Some(&version) {
                    seen_versions.push(version);
                }
                answered += 1;
                if stop_load.load(Ordering::Acquire) {
                    break;
                }
            }
            (answered, seen_versions)
        });

        // The boundary-free stream (the role CI's traind-stream bin plays).
        let conn = TcpStream::connect(traind_addr).expect("connect traind");
        let mut reader = BufReader::new(conn.try_clone().expect("clone traind conn"));
        let mut writer = BufWriter::new(conn);

        let mut ack = Value::Null;
        for w in 0..bootstrap {
            ack = commit_window(&mut writer, &mut reader, &stream.tasks[0], w, per_window);
        }
        assert_eq!(field_u64(&ack, "rounds"), 1, "bootstrap round: {ack:?}");
        assert_publish(&ack, 1, 1);
        serving_v1.store(true, Ordering::Release);

        for w in 0..clean {
            let ack = commit_window(
                &mut writer,
                &mut reader,
                &stream.tasks[0],
                bootstrap + w,
                per_window,
            );
            assert_eq!(field_u64(&ack, "detections"), 0, "false alarm: {ack:?}");
        }

        let mut round2 = None;
        for w in 0..max_shift {
            let ack = commit_window(&mut writer, &mut reader, &stream.tasks[1], w, per_window);
            if field_u64(&ack, "rounds") == 2 {
                round2 = Some(ack);
                break;
            }
        }
        let round2 = round2.unwrap_or_else(|| {
            panic!("no detection + online round within {max_shift} shifted windows")
        });
        assert_eq!(field_u64(&round2, "detections"), 1);
        assert_eq!(field_u64(&round2, "tasks"), 2);
        // The inferred boundary must match the generator's switch window.
        assert_eq!(field_u64(&round2, "boundary"), switch_window, "{round2:?}");
        assert_publish(&round2, 2, 2);

        stop_load.store(true, Ordering::Release);
        let (answered, seen_versions) = load.join().expect("load client");
        assert!(answered > 0, "load client never got a response");
        assert_eq!(
            seen_versions.last(),
            Some(&2),
            "live client should end on the hot-reloaded version 2 (saw {seen_versions:?})"
        );

        // Final STATUS over the same traind connection.
        writeln!(writer, "STATUS").expect("send STATUS");
        writer.flush().expect("flush STATUS");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read STATUS");
        let status: Value = serde_json::from_str(line.trim()).expect("STATUS is JSON");
        field(&status, "status").clone()
    });

    assert_eq!(field_u64(&final_status, "tasks"), 2);
    assert_eq!(field_u64(&final_status, "detections"), 1);
    assert_eq!(field_u64(&final_status, "rounds"), 2);
    assert_eq!(field_u64(&final_status, "published"), 2);
    assert_eq!(field_u64(&final_status, "publish_failed"), 0);
    assert_eq!(field_u64(&final_status, "dropped_windows"), 0);

    // Both checkpoints were atomically published on disk.
    for task in ["task000.cdclsnap", "task001.cdclsnap"] {
        let path = publish_dir.join(task);
        assert!(path.is_file(), "missing published checkpoint {path:?}");
        cdcl_core::CdclTrainer::resume_from(&path)
            .unwrap_or_else(|e| panic!("published {task} does not restore: {e}"));
    }
    let _ = std::fs::remove_dir_all(&publish_dir);
}

/// One phase span read back from the trace file.
struct SpanLine {
    name: String,
    trace: String,
    span: String,
    parent: Option<String>,
}

fn phase_spans(trace_text: &str) -> Vec<SpanLine> {
    let field_str = |v: &Value, name: &str| -> Option<String> {
        match v.field(name) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };
    trace_text
        .lines()
        .filter_map(|line| serde_json::from_str::<Value>(line.trim()).ok())
        .filter(|v| field_str(v, "ev").as_deref() == Some("phase"))
        .filter_map(|v| {
            Some(SpanLine {
                name: field_str(&v, "name")?,
                trace: field_str(&v, "trace")?,
                span: field_str(&v, "span")?,
                parent: field_str(&v, "parent"),
            })
        })
        .collect()
}

/// The DESIGN.md §16 distributed-trace contract over the bootstrap slice of
/// the same closed loop: the trace id stamped on the committed window's ack
/// must reappear — with an unbroken parent chain — on the `publish` span,
/// the serve-side `reload` span (joined through the wire `trace=` field),
/// and the `first_serve` span of the first batch on the new version.
#[test]
fn one_trace_id_survives_commit_publish_reload_and_first_serve() {
    let _g = TRAIND_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let pid = std::process::id();
    let trace_path = std::env::temp_dir().join(format!("traind-e2e-trace-{pid}.jsonl"));
    cdcl_telemetry::set_trace_file(Some(&trace_path));

    let stream = scenario(13);
    let per_window = 6;
    let bootstrap = 2usize;

    let registry = SnapshotRegistry::new(0);
    let serve_listener = TcpListener::bind("127.0.0.1:0").expect("bind serve");
    let serve_addr = serve_listener.local_addr().expect("serve addr").to_string();
    let serve_args = ServeArgs {
        bench_out: None,
        empty_ok: true,
        // One publish connection from traind plus the predict client.
        conns: 2,
        threads: 1,
        max_batch: 4,
        ..ServeArgs::default()
    };
    let serve_stats = ServeStats::default();

    let publish_dir = std::env::temp_dir().join(format!("traind-e2e-trace-pub-{pid}"));
    let _ = std::fs::remove_dir_all(&publish_dir);
    std::fs::create_dir_all(&publish_dir).expect("create publish dir");
    let traind_args = TraindArgs {
        notify: vec![serve_addr.clone()],
        publish_dir: publish_dir.clone(),
        threads: 1,
        conns: 1,
        bootstrap_windows: bootstrap,
        ..TraindArgs::default()
    };
    let trainer = build_trainer(&traind_args).expect("fresh trainer");
    let dims = trainer.input_dims();
    let daemon = TraindDaemon::with_drift_config(traind_args, trainer, DriftConfig::default());
    let traind_listener = TcpListener::bind("127.0.0.1:0").expect("bind traind");
    let traind_addr = traind_listener.local_addr().expect("traind addr");

    let ack_trace = std::thread::scope(|s| {
        let (registry, serve_args, serve_stats) = (&registry, &serve_args, &serve_stats);
        s.spawn(move || {
            cdcl_bench::serve::run_tcp(registry, serve_listener, serve_args, serve_stats)
        });
        let daemon = &daemon;
        s.spawn(move || run_tcp(daemon, traind_listener));

        // Bootstrap windows only: one round, one publish, serve goes live
        // at version 1.
        let conn = TcpStream::connect(traind_addr).expect("connect traind");
        let mut reader = BufReader::new(conn.try_clone().expect("clone traind conn"));
        let mut writer = BufWriter::new(conn);
        let mut ack = Value::Null;
        for w in 0..bootstrap {
            ack = commit_window(&mut writer, &mut reader, &stream.tasks[0], w, per_window);
        }
        assert_publish(&ack, 1, 1);
        let ack_trace = match field(&ack, "trace") {
            Value::Str(s) => s.clone(),
            other => panic!("traced commit ack has no trace field: {other:?}"),
        };

        // First request on the published version: completes the trace.
        let conn = TcpStream::connect(&serve_addr).expect("connect predict client");
        let mut sreader = BufReader::new(conn.try_clone().expect("clone predict client"));
        let mut swriter = BufWriter::new(conn);
        let zeros = vec!["0.0"; dims.0 * dims.1 * dims.2].join(",");
        writeln!(swriter, "{{\"id\":1,\"mode\":\"cil\",\"image\":[{zeros}]}}")
            .expect("send request");
        writeln!(swriter).expect("send flush line");
        swriter.flush().expect("flush request");
        let mut line = String::new();
        sreader.read_line(&mut line).expect("read response");
        let resp: Value = serde_json::from_str(line.trim()).expect("response is JSON");
        assert!(field_bool(&resp, "ok"), "request failed: {}", line.trim());
        ack_trace
    });

    cdcl_telemetry::flush();
    cdcl_telemetry::set_trace_file(None);

    let ctx = cdcl_telemetry::ctx::TraceContext::parse(&ack_trace)
        .unwrap_or_else(|e| panic!("ack trace {ack_trace:?} is not a traceparent: {e}"));
    let trace_hex = format!("{:032x}", ctx.trace_id);
    let root_span_hex = format!("{:016x}", ctx.span_id);

    let text = std::fs::read_to_string(&trace_path).expect("read trace file");
    let spans = phase_spans(&text);
    let in_trace = |name: &str| -> &SpanLine {
        spans
            .iter()
            .find(|s| s.name == name && s.trace == trace_hex)
            .unwrap_or_else(|| panic!("no `{name}` span in trace {trace_hex}"))
    };
    // The ack's traceparent IS the window_commit root span.
    let root = in_trace("window_commit");
    assert_eq!(root.span, root_span_hex);
    assert_eq!(root.parent, None, "window_commit must be the root");
    // traind side: publish under the root...
    let publish = in_trace("publish");
    assert_eq!(publish.parent.as_deref(), Some(root_span_hex.as_str()));
    // ...serve side: reload under publish (joined via the wire `trace=`
    // field), first_serve under reload. One id, four spans, two daemons.
    let reload = in_trace("reload");
    assert_eq!(reload.parent.as_deref(), Some(publish.span.as_str()));
    let first = in_trace("first_serve");
    assert_eq!(first.parent.as_deref(), Some(reload.span.as_str()));

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_dir_all(&publish_dir);
}
