//! Shared baseline hyper-parameters.

use cdcl_nn::{AttentionMode, BackboneConfig};

/// Training configuration shared by all baselines. Baselines use *simple*
/// attention (one shared key projection — they have no task-specific
/// parameters) and the same epoch / memory budgets as CDCL so comparisons
/// are fair, mirroring the paper's setup (125 epochs and 1000 memory slots
/// for every method; scaled down here identically for everyone).
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Backbone architecture (attention forced to `Simple`).
    pub backbone: BackboneConfig,
    /// Epochs per task.
    pub epochs: usize,
    /// Warm-up epochs (UDA baselines only).
    pub warmup_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Memory capacity in records.
    pub memory_size: usize,
    /// Replay mini-batch size.
    pub replay_batch: usize,
    /// Peak learning rate.
    pub peak_lr: f32,
    /// Minimum learning rate.
    pub min_lr: f32,
    /// Logit-replay weight (DER's alpha).
    pub alpha: f32,
    /// Replayed-label CE weight (DER++'s beta; HAL/MLS reuse it).
    pub beta: f32,
    /// Anchor/alignment regularizer weight (HAL's lambda, MLS's alignment).
    pub lambda: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        let backbone = BackboneConfig {
            attention: AttentionMode::Simple,
            ..BackboneConfig::default()
        };
        Self {
            backbone,
            epochs: 10,
            warmup_epochs: 3,
            batch_size: 16,
            memory_size: 32,
            replay_batch: 16,
            peak_lr: 3e-3,
            min_lr: 1e-4,
            alpha: 0.5,
            beta: 0.5,
            lambda: 0.1,
            seed: 0,
        }
    }
}

impl BaselineConfig {
    /// Fast configuration for tests.
    pub fn smoke() -> Self {
        Self {
            epochs: 10,
            warmup_epochs: 3,
            memory_size: 60,
            ..Self::default()
        }
    }

    /// Forces the attention mode to `Simple` (baselines own no task keys).
    pub fn normalized(mut self) -> Self {
        self.backbone.attention = AttentionMode::Simple;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_simple_attention() {
        assert_eq!(
            BaselineConfig::default().backbone.attention,
            AttentionMode::Simple
        );
    }

    #[test]
    fn normalized_overrides_task_keyed() {
        let mut c = BaselineConfig::default();
        c.backbone.attention = AttentionMode::TaskKeyed;
        assert_eq!(c.normalized().backbone.attention, AttentionMode::Simple);
    }
}
