//! End-to-end validation of the center-aware pseudo-labeling pipeline:
//! after a source warm-up, the centroids built from TIL predictions must
//! label the (hidden-label) target data well above chance on a near pair.

use cdcl::core::pseudo::{
    build_pairs, nearest_centroid_labels, pseudo_label_accuracy, weighted_centroids,
};
use cdcl::core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl::data::{mnist_usps, stack, MnistUspsDirection, Sample, Scale};
use cdcl::tensor::Tensor;

fn features_of(trainer: &CdclTrainer, samples: &[Sample], task: usize) -> Tensor {
    let mut parts = Vec::new();
    for chunk in samples.chunks(32) {
        let refs: Vec<&Sample> = chunk.iter().collect();
        let (imgs, _) = stack(&refs);
        parts.push(trainer.model().extract_features(&imgs, task));
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat0(&refs)
}

fn til_probs_of(trainer: &CdclTrainer, samples: &[Sample], task: usize) -> Tensor {
    let mut parts = Vec::new();
    for chunk in samples.chunks(32) {
        let refs: Vec<&Sample> = chunk.iter().collect();
        let (imgs, _) = stack(&refs);
        parts.push(trainer.model().predict_til(&imgs, task));
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat0(&refs)
}

#[test]
fn pseudo_labels_beat_chance_after_training() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let task = &stream.tasks[0];
    let mut trainer = CdclTrainer::new(CdclConfig::smoke());
    trainer.learn_task(task);

    let tgt_feats = features_of(&trainer, &task.target_train, 0);
    let tgt_probs = til_probs_of(&trainer, &task.target_train, 0);
    let centroids = weighted_centroids(&tgt_probs, &tgt_feats);
    let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
    let truth: Vec<usize> = task.target_train.iter().map(|s| s.label).collect();
    let acc = pseudo_label_accuracy(&pseudo, &truth);
    // 2 classes -> chance 0.5 (nearest-centroid can also be anti-correlated;
    // after CDCL training it must be solidly correlated).
    assert!(acc > 0.7, "pseudo-label accuracy only {acc}");
}

#[test]
fn matched_pairs_are_mostly_correct() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
    let task = &stream.tasks[0];
    let mut trainer = CdclTrainer::new(CdclConfig::smoke());
    trainer.learn_task(task);

    let src_feats = features_of(&trainer, &task.source_train, 0);
    let src_labels: Vec<usize> = task.source_train.iter().map(|s| s.label).collect();
    let tgt_feats = features_of(&trainer, &task.target_train, 0);
    let tgt_probs = til_probs_of(&trainer, &task.target_train, 0);
    let centroids = weighted_centroids(&tgt_probs, &tgt_feats);
    let pseudo = nearest_centroid_labels(&tgt_feats, &centroids);
    let pairs = build_pairs(&src_feats, &src_labels, &tgt_feats, &pseudo);
    assert!(!pairs.is_empty());

    // A pair is "correct" when the paired source label matches the hidden
    // target truth — Eq. 19's noise filter should make most pairs correct.
    let correct = pairs
        .iter()
        .filter(|p| task.target_train[p.target].label == p.label)
        .count();
    let frac = correct as f64 / pairs.len() as f64;
    assert!(frac > 0.7, "only {frac} of pairs are truth-consistent");
    // And every pair's invariant holds by construction:
    for p in &pairs {
        assert_eq!(task.source_train[p.source].label, p.label);
    }
}
