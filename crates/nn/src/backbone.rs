//! The full feature extractor: tokenizer → encoder → sequence pooling.
//!
//! This is the `a(x)` operator of the paper (Eq. 6): images in, pooled
//! feature vectors `z ∈ R^{b×d}` out. CDCL and every baseline share this
//! type so that experimental comparisons isolate the learning algorithm.

use cdcl_autograd::{Graph, Param, Var};
use rand::Rng;

use crate::attention::AttentionMode;
use crate::encoder::Encoder;
use crate::layers::{ConvTokenizer, SeqPool};
use crate::Module;

/// Architecture hyper-parameters of a [`Backbone`].
///
/// The paper's two instances (§V-B) map to:
/// * small — 7 encoder layers, 2-stage 7×7 tokenizer, 28×28×1 inputs;
/// * large — 14 encoder layers, 2-stage 7×7 tokenizer, 224×224×3 inputs.
///
/// The defaults here are scaled down for single-core CPU experiments; the
/// paper-sized instances remain constructible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackboneConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial size.
    pub in_hw: (usize, usize),
    /// Embedding dimension `d`.
    pub embed_dim: usize,
    /// Number of encoder layers `L_a`.
    pub depth: usize,
    /// Tokenizer stages `L_c`.
    pub tokenizer_stages: usize,
    /// Tokenizer kernel size.
    pub tokenizer_kernel: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
    /// Task-keyed (paper) vs simple attention (ablation).
    pub attention: AttentionMode,
    /// Apply softmax to attention scores (see DESIGN.md §2).
    pub attn_softmax: bool,
}

impl Default for BackboneConfig {
    fn default() -> Self {
        Self {
            in_channels: 1,
            in_hw: (16, 16),
            embed_dim: 32,
            depth: 2,
            tokenizer_stages: 2,
            tokenizer_kernel: 3,
            mlp_ratio: 2,
            attention: AttentionMode::TaskKeyed,
            attn_softmax: true,
        }
    }
}

impl BackboneConfig {
    /// The paper's small instance (MNIST↔USPS): 7 encoder layers, 2-stage
    /// 7×7 tokenizer, 28×28×1 inputs.
    pub fn paper_small() -> Self {
        Self {
            in_channels: 1,
            in_hw: (28, 28),
            embed_dim: 128,
            depth: 7,
            tokenizer_stages: 2,
            tokenizer_kernel: 7,
            mlp_ratio: 2,
            attention: AttentionMode::TaskKeyed,
            attn_softmax: true,
        }
    }

    /// The paper's large instance (all other benchmarks): 14 encoder layers,
    /// 2-stage 7×7 tokenizer, 224×224×3 inputs.
    pub fn paper_large() -> Self {
        Self {
            in_channels: 3,
            in_hw: (224, 224),
            embed_dim: 256,
            depth: 14,
            tokenizer_stages: 2,
            tokenizer_kernel: 7,
            mlp_ratio: 2,
            attention: AttentionMode::TaskKeyed,
            attn_softmax: true,
        }
    }
}

/// Tokenizer + encoder + pooling: images `[b, c, h, w]` to features
/// `[b, d]`.
pub struct Backbone {
    tokenizer: ConvTokenizer,
    encoder: Encoder,
    pool: SeqPool,
    config: BackboneConfig,
}

impl Backbone {
    /// Builds the backbone from a config.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: BackboneConfig) -> Self {
        let tokenizer = ConvTokenizer::new(
            rng,
            config.in_channels,
            config.in_hw,
            config.embed_dim,
            config.tokenizer_stages,
            config.tokenizer_kernel,
        );
        let encoder = Encoder::new(
            rng,
            config.embed_dim,
            config.depth,
            config.mlp_ratio,
            config.attention,
            config.attn_softmax,
        );
        let pool = SeqPool::new(rng, config.embed_dim);
        Self {
            tokenizer,
            encoder,
            pool,
            config,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &BackboneConfig {
        &self.config
    }

    /// Embedding dimension `d`.
    pub fn embed_dim(&self) -> usize {
        self.config.embed_dim
    }

    /// Tokens per image `n`.
    pub fn token_count(&self) -> usize {
        self.tokenizer.token_count()
    }

    /// The encoder (exposed for freezing checks).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Instantiates a new task's `K_i`/`b_i` in every layer, freezing the
    /// previous task's.
    pub fn add_task<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.encoder.add_task(rng);
    }

    /// Every retired-task `(K_i, b_i)` parameter across all encoder layers —
    /// the set the graph verifier requires frozen with zero gradient.
    pub fn frozen_params(&self) -> Vec<Param> {
        self.encoder.frozen_params()
    }

    /// Number of task slots (1 in simple-attention mode regardless of how
    /// many tasks were added).
    pub fn num_task_slots(&self) -> usize {
        self.encoder
            .layers()
            .first()
            .map_or(0, |l| l.attention().bank().num_tasks())
    }

    /// `a(x)` — pooled features of a single stream via self-attention.
    pub fn features_self(&self, g: &mut Graph, x_img: Var, task: usize) -> Var {
        let tokens = self.tokenizer.forward(g, x_img);
        let encoded = self.encoder.forward_self(g, tokens, task);
        self.pool.forward(g, encoded)
    }

    /// Mixed features of a (source, target) image pair via cross-attention.
    pub fn features_cross(&self, g: &mut Graph, x_src: Var, x_tgt: Var, task: usize) -> Var {
        let src_tokens = self.tokenizer.forward(g, x_src);
        let tgt_tokens = self.tokenizer.forward(g, x_tgt);
        let mixed = self.encoder.forward_cross(g, src_tokens, tgt_tokens, task);
        self.pool.forward(g, mixed)
    }
}

impl Module for Backbone {
    fn params(&self) -> Vec<Param> {
        let mut p = self.tokenizer.params();
        p.extend(self.encoder.params());
        p.extend(self.pool.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl_tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small(rng: &mut SmallRng) -> Backbone {
        let mut b = Backbone::new(rng, BackboneConfig::default());
        b.add_task(rng);
        b
    }

    #[test]
    fn features_self_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let b = small(&mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0));
        let z = b.features_self(&mut g, x, 0);
        assert_eq!(g.value(z).shape(), &[2, 32]);
        assert!(g.value(z).all_finite());
    }

    #[test]
    fn features_cross_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let b = small(&mut rng);
        let mut g = Graph::new();
        let xs = g.input(Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0));
        let xt = g.input(Tensor::randn(&mut rng, &[2, 1, 16, 16], 1.0));
        let z = b.features_cross(&mut g, xs, xt, 0);
        assert_eq!(g.value(z).shape(), &[2, 32]);
    }

    #[test]
    fn add_task_grows_slots_and_params() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = small(&mut rng);
        let p1 = b.num_parameters();
        b.add_task(&mut rng);
        assert_eq!(b.num_task_slots(), 2);
        assert!(b.num_parameters() > p1, "new task must add parameters");
    }

    #[test]
    fn paper_configs_construct() {
        // Construction only — the paper-sized models are too slow to run in
        // unit tests, but their shapes must be consistent.
        let mut rng = SmallRng::seed_from_u64(4);
        let small = Backbone::new(&mut rng, BackboneConfig::paper_small());
        assert_eq!(small.embed_dim(), 128);
        assert_eq!(small.token_count(), 49); // 28 -> 14 -> 7
        assert_eq!(small.encoder().depth(), 7);
    }

    #[test]
    fn new_task_keys_warm_start_then_diverge() {
        // New task keys warm-start from the previous task's values
        // (DESIGN.md §2): features initially coincide, but the new pair is
        // distinct trainable storage, so training moves only the new task.
        let mut rng = SmallRng::seed_from_u64(5);
        let mut b = small(&mut rng);
        b.add_task(&mut rng);
        let img = Tensor::randn(&mut rng, &[1, 1, 16, 16], 1.0);
        let mut g = Graph::new();
        let x = g.input(img);
        let z0 = b.features_self(&mut g, x, 0);
        let z1 = b.features_self(&mut g, x, 1);
        assert_eq!(g.value(z0).data(), g.value(z1).data(), "warm start");

        // Perturb the (trainable) task-1 keys only; task-0 output must not
        // move, task-1 output must.
        use crate::Module;
        for p in b.params() {
            if p.trainable() && p.name().contains("key1") {
                p.set_value(p.value().add_scalar(0.05));
            }
        }
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(
            &mut SmallRng::seed_from_u64(5),
            &[1, 1, 16, 16],
            1.0,
        ));
        let z0b = b.features_self(&mut g, x, 0);
        let z1b = b.features_self(&mut g, x, 1);
        assert_ne!(g.value(z0b).data(), g.value(z1b).data());
    }
}
