//! The latent-prototype domain-pair generator.

use cdcl_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One labelled image. For target-domain samples the label exists only for
/// evaluation.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Image tensor `[c, h, w]`.
    pub image: Tensor,
    /// Task-local label in `0..classes_per_task`.
    pub label: usize,
}

/// All data of one sequential task.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// 0-based task index.
    pub task_id: usize,
    /// Global class ids covered by this task (`classes_per_task` of them).
    pub global_classes: Vec<usize>,
    /// Labelled source-domain training samples.
    pub source_train: Vec<Sample>,
    /// Unlabelled target-domain training samples (labels hidden from
    /// learners; used only to score pseudo-label quality in tests).
    pub target_train: Vec<Sample>,
    /// Target-domain test samples (labels used for evaluation only).
    pub target_test: Vec<Sample>,
}

impl TaskData {
    /// Number of classes in this task.
    pub fn num_classes(&self) -> usize {
        self.global_classes.len()
    }
}

/// A full cross-domain task stream: the data-stream system
/// `(D_{S_i}, D_{T_i})` of the paper's §III.
#[derive(Debug, Clone)]
pub struct CrossDomainStream {
    /// Benchmark name, e.g. `"office31 A->D"`.
    pub name: String,
    /// The sequential tasks.
    pub tasks: Vec<TaskData>,
    /// Image layout `(channels, (h, w))`.
    pub image_layout: (usize, (usize, usize)),
}

impl CrossDomainStream {
    /// Number of tasks `T`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }
}

/// Configuration of a synthetic source/target domain pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainPairConfig {
    /// Benchmark name for reports.
    pub name: String,
    /// Total classes (must be divisible by `tasks`).
    pub num_classes: usize,
    /// Number of sequential tasks.
    pub tasks: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height/width.
    pub hw: (usize, usize),
    /// Latent prototype dimensionality.
    pub latent_dim: usize,
    /// Source↔target rendering gap in `[0, 1]`: 0 = identical domains,
    /// 1 = unrelated renderings.
    pub domain_gap: f32,
    /// Per-task rendering drift in `[0, 1]` — the paper's *task drift*
    /// (`P_i(X,Y) != P_{i+1}(X,Y)`, §III): each task perturbs the shared
    /// rendering by this amount, so a sequentially fine-tuned network
    /// forgets how to read earlier tasks' inputs unless it retains
    /// task-specific alignment (frozen `K_i`, rehearsal).
    pub task_drift: f32,
    /// Latent within-class standard deviation (class overlap).
    pub within_class_std: f32,
    /// Additive pixel noise std in the *source* domain.
    pub source_noise_std: f32,
    /// Additive pixel noise std in the *target* domain.
    pub target_noise_std: f32,
    /// Source training samples per class.
    pub train_per_class: usize,
    /// Target training samples per class.
    pub target_train_per_class: usize,
    /// Target test samples per class.
    pub test_per_class: usize,
    /// Master seed: everything derives deterministically from it.
    pub seed: u64,
}

impl DomainPairConfig {
    /// Classes per task.
    pub fn classes_per_task(&self) -> usize {
        assert!(
            self.num_classes.is_multiple_of(self.tasks),
            "{}: {} classes not divisible into {} tasks",
            self.name,
            self.num_classes,
            self.tasks
        );
        self.num_classes / self.tasks
    }

    /// Generates the full task stream.
    pub fn generate(&self) -> CrossDomainStream {
        assert!(
            (0.0..=1.0).contains(&self.domain_gap),
            "domain_gap must lie in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.task_drift),
            "task_drift must lie in [0,1]"
        );
        let cpt = self.classes_per_task();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let pixels = self.channels * self.hw.0 * self.hw.1;

        // Latent class prototypes, unit-ish scale, well separated.
        let prototypes: Vec<Tensor> = (0..self.num_classes)
            .map(|_| Tensor::randn(&mut rng, &[self.latent_dim], 1.0))
            .collect();

        // Domain renderings: target = sqrt(1-gap) * shared + sqrt(gap) * own.
        let shared = Tensor::randn(&mut rng, &[self.latent_dim, pixels], 1.0);
        let source_own = Tensor::randn(&mut rng, &[self.latent_dim, pixels], 1.0);
        let target_own = Tensor::randn(&mut rng, &[self.latent_dim, pixels], 1.0);
        // The source keeps a mild private component so the two domains are
        // never literally identical even at gap = 0.05.
        let src_gap = (self.domain_gap * 0.25).min(1.0);
        let scale = 1.0 / (self.latent_dim as f32).sqrt();

        // Per-domain photometric parameters (contrast/brightness), mimicking
        // e.g. DSLR vs Webcam exposure differences.
        let source_photo = (1.0, 0.0);
        let target_photo = (1.0 - 0.3 * self.domain_gap, 0.2 * self.domain_gap);

        let mut tasks = Vec::with_capacity(self.tasks);
        for t in 0..self.tasks {
            // Task drift: every task perturbs the *shared* rendering by its
            // own random direction (identical for both domains, so the
            // within-task domain gap is preserved while consecutive tasks'
            // conditionals differ).
            let drift_dir = Tensor::randn(&mut rng, &[self.latent_dim, pixels], 1.0);
            let shared_t = mix(&shared, &drift_dir, self.task_drift);
            let w_source = mix(&shared_t, &source_own, src_gap);
            let w_target = mix(&shared_t, &target_own, self.domain_gap);
            let global_classes: Vec<usize> = (t * cpt..(t + 1) * cpt).collect();
            let mut source_train = Vec::with_capacity(cpt * self.train_per_class);
            let mut target_train = Vec::with_capacity(cpt * self.target_train_per_class);
            let mut target_test = Vec::with_capacity(cpt * self.test_per_class);
            for (local, &gc) in global_classes.iter().enumerate() {
                let proto = &prototypes[gc];
                for _ in 0..self.train_per_class {
                    source_train.push(self.render(
                        &mut rng,
                        proto,
                        &w_source,
                        scale,
                        source_photo,
                        self.source_noise_std,
                        local,
                    ));
                }
                for _ in 0..self.target_train_per_class {
                    target_train.push(self.render(
                        &mut rng,
                        proto,
                        &w_target,
                        scale,
                        target_photo,
                        self.target_noise_std,
                        local,
                    ));
                }
                for _ in 0..self.test_per_class {
                    target_test.push(self.render(
                        &mut rng,
                        proto,
                        &w_target,
                        scale,
                        target_photo,
                        self.target_noise_std,
                        local,
                    ));
                }
            }
            source_train.shuffle(&mut rng);
            target_train.shuffle(&mut rng);
            tasks.push(TaskData {
                task_id: t,
                global_classes,
                source_train,
                target_train,
                target_test,
            });
        }
        CrossDomainStream {
            name: self.name.clone(),
            tasks,
            image_layout: (self.channels, self.hw),
        }
    }

    /// Renders one sample: latent draw → linear mix → tanh squash →
    /// photometric transform → noise.
    #[allow(clippy::too_many_arguments)]
    fn render<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        proto: &Tensor,
        w: &Tensor,
        scale: f32,
        (contrast, brightness): (f32, f32),
        noise_std: f32,
        label: usize,
    ) -> Sample {
        let latent = proto.add(&Tensor::randn(
            rng,
            &[self.latent_dim],
            self.within_class_std,
        ));
        let flat = latent.reshape(&[1, self.latent_dim]).matmul(w).scale(scale);
        let mut img = flat.map(|v| v.tanh() * contrast + brightness);
        if noise_std > 0.0 {
            img = img.add(&Tensor::randn(rng, img.shape(), noise_std));
        }
        Sample {
            image: img.reshape(&[self.channels, self.hw.0, self.hw.1]),
            label,
        }
    }
}

/// `sqrt(1-gap) * a + sqrt(gap) * b` — keeps the output variance constant
/// while interpolating between a shared and a private rendering.
fn mix(a: &Tensor, b: &Tensor, gap: f32) -> Tensor {
    a.scale((1.0 - gap).sqrt()).add(&b.scale(gap.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(gap: f32, seed: u64) -> DomainPairConfig {
        DomainPairConfig {
            name: "tiny".into(),
            num_classes: 4,
            tasks: 2,
            channels: 1,
            hw: (8, 8),
            latent_dim: 6,
            domain_gap: gap,
            task_drift: 0.4,
            within_class_std: 0.3,
            source_noise_std: 0.05,
            target_noise_std: 0.05,
            train_per_class: 10,
            target_train_per_class: 10,
            test_per_class: 5,
            seed,
        }
    }

    #[test]
    fn generates_expected_task_structure() {
        let s = tiny(0.3, 1).generate();
        assert_eq!(s.num_tasks(), 2);
        assert_eq!(s.tasks[0].global_classes, vec![0, 1]);
        assert_eq!(s.tasks[1].global_classes, vec![2, 3]);
        assert_eq!(s.tasks[0].source_train.len(), 20);
        assert_eq!(s.tasks[0].target_train.len(), 20);
        assert_eq!(s.tasks[0].target_test.len(), 10);
        assert_eq!(s.image_layout, (1, (8, 8)));
    }

    #[test]
    fn labels_are_task_local() {
        let s = tiny(0.3, 2).generate();
        for task in &s.tasks {
            for sample in task
                .source_train
                .iter()
                .chain(&task.target_train)
                .chain(&task.target_test)
            {
                assert!(sample.label < task.num_classes());
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = tiny(0.3, 7).generate();
        let b = tiny(0.3, 7).generate();
        assert_eq!(
            a.tasks[0].source_train[0].image.data(),
            b.tasks[0].source_train[0].image.data()
        );
        let c = tiny(0.3, 8).generate();
        assert_ne!(
            a.tasks[0].source_train[0].image.data(),
            c.tasks[0].source_train[0].image.data()
        );
    }

    #[test]
    fn images_are_bounded_and_finite() {
        let s = tiny(0.5, 3).generate();
        for sample in &s.tasks[0].source_train {
            assert!(sample.image.all_finite());
            // tanh output + noise: comfortably within [-2, 2]
            assert!(sample.image.max() < 2.0);
        }
    }

    /// Mean pixel-space distance between same-class samples across domains.
    fn cross_domain_class_distance(s: &CrossDomainStream) -> f32 {
        let task = &s.tasks[0];
        let mut total = 0.0;
        let mut count = 0;
        for src in task.source_train.iter().take(10) {
            for tgt in task.target_train.iter().take(10) {
                if src.label == tgt.label {
                    total += src.image.sub(&tgt.image).sq_norm().sqrt();
                    count += 1;
                }
            }
        }
        total / count as f32
    }

    #[test]
    fn larger_gap_means_larger_domain_shift() {
        let near = cross_domain_class_distance(&tiny(0.05, 4).generate());
        let far = cross_domain_class_distance(&tiny(0.9, 4).generate());
        assert!(
            far > near * 1.2,
            "gap must widen the shift: near={near} far={far}"
        );
    }

    #[test]
    fn class_structure_exists_within_source_domain() {
        // Same-class pairs must be closer than different-class pairs in the
        // source domain, otherwise nothing is learnable.
        let s = tiny(0.3, 5).generate();
        let task = &s.tasks[0];
        let (mut same, mut diff) = (0.0f32, 0.0f32);
        let (mut ns, mut nd) = (0, 0);
        for a in task.source_train.iter().take(15) {
            for b in task.source_train.iter().skip(5).take(15) {
                let d = a.image.sub(&b.image).sq_norm();
                if a.label == b.label {
                    same += d;
                    ns += 1;
                } else {
                    diff += d;
                    nd += 1;
                }
            }
        }
        assert!(same / (ns as f32) < diff / (nd as f32));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_classes_panic() {
        let mut c = tiny(0.3, 1);
        c.num_classes = 5;
        c.generate();
    }

    #[test]
    #[should_panic(expected = "domain_gap")]
    fn gap_out_of_range_panics() {
        let mut c = tiny(0.3, 1);
        c.domain_gap = 1.5;
        c.generate();
    }
}
