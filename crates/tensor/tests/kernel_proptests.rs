//! Property-based tests for the execution kernels: every GEMM variant, at
//! every thread count, must be **bitwise identical** to a naive
//! single-threaded reference. This is the determinism contract of
//! `cdcl_tensor::kernels` (each output element is reduced by exactly one
//! accumulator in ascending inner-index order), checked with `==` on the
//! raw `f32` data — no tolerances.

use cdcl_tensor::kernels;
use cdcl_tensor::Tensor;
use proptest::prelude::*;

/// Thread counts exercised for every case. The pool override is
/// process-global, but because kernels are thread-count-invariant by
/// construction, concurrent tests flipping it cannot change any result.
const THREADS: [usize; 3] = [1, 2, 8];

/// Textbook triple loop: `out[i][j] += sum_p a[i][p] * b[p][j]`, summed in
/// ascending `p` order — the exact chain the blocked kernels must follow.
fn reference_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = x[r * cols + c];
        }
    }
    out
}

/// Strategy: GEMM dimensions spanning the blocking boundaries (KC = 256 is
/// too slow for a proptest case; 1..40 crosses the JB = 64 boundary via the
/// batched variants' row counts instead, and unit dims hit the edge cases).
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..40, 1usize..12)
}

proptest! {
    /// `gemm_nn` == reference, bitwise, at 1/2/8 threads.
    #[test]
    fn gemm_nn_matches_reference_bitwise(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| fill(seed, i)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| fill(seed ^ 0x9e37, i)).collect();
        let expect = reference_nn(&a, &b, m, k, n);
        for t in THREADS {
            kernels::set_num_threads(t);
            let mut out = vec![0.0f32; m * n];
            kernels::gemm_nn(&mut out, &a, &b, m, k, n);
            kernels::set_num_threads(0);
            prop_assert_eq!(&out, &expect);
        }
    }

    /// `gemm_nt(A, B)` == reference `A · Bᵀ`, bitwise, at 1/2/8 threads.
    #[test]
    fn gemm_nt_matches_reference_bitwise(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| fill(seed, i)).collect();
        // B stored as [n, k]; the reference multiplies its transpose [k, n].
        let b: Vec<f32> = (0..n * k).map(|i| fill(seed ^ 0x51ed, i)).collect();
        let expect = reference_nn(&a, &transpose(&b, n, k), m, k, n);
        for t in THREADS {
            kernels::set_num_threads(t);
            let mut out = vec![0.0f32; m * n];
            kernels::gemm_nt(&mut out, &a, &b, m, k, n);
            kernels::set_num_threads(0);
            prop_assert_eq!(&out, &expect);
        }
    }

    /// `gemm_tn(A, B)` == reference `Aᵀ · B`, bitwise, at 1/2/8 threads.
    #[test]
    fn gemm_tn_matches_reference_bitwise(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        // A stored as [k, m]; the reference multiplies its transpose [m, k].
        let a: Vec<f32> = (0..k * m).map(|i| fill(seed, i)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| fill(seed ^ 0xc2b2, i)).collect();
        let expect = reference_nn(&transpose(&a, k, m), &b, m, k, n);
        for t in THREADS {
            kernels::set_num_threads(t);
            let mut out = vec![0.0f32; m * n];
            kernels::gemm_tn(&mut out, &a, &b, m, k, n);
            kernels::set_num_threads(0);
            prop_assert_eq!(&out, &expect);
        }
    }

    /// Batched fused tensor ops match explicit transpose-then-matmul,
    /// bitwise, at 1/2/8 threads (the attention-score shape `[b,n,d]`).
    #[test]
    fn fused_tensor_ops_match_explicit_transpose_bitwise(
        (b, n, d) in (1usize..4, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let x = Tensor::from_vec((0..b * n * d).map(|i| fill(seed, i)).collect(), &[b, n, d]);
        let y = Tensor::from_vec((0..b * n * d).map(|i| fill(seed ^ 0x33, i)).collect(), &[b, n, d]);
        let expect_nt = x.matmul(&y.transpose_last2()); // [b, n, n]
        let expect_tn = x.transpose_last2().matmul(&y); // [b, d, d]
        for t in THREADS {
            kernels::set_num_threads(t);
            let got_nt = x.matmul_nt(&y);
            let got_tn = x.matmul_tn(&y);
            kernels::set_num_threads(0);
            prop_assert_eq!(got_nt.data(), expect_nt.data());
            prop_assert_eq!(got_tn.data(), expect_tn.data());
        }
    }

    /// `im2col`-based convolution is thread-count-invariant, bitwise.
    #[test]
    fn conv2d_is_thread_count_invariant(
        (bsz, cin, cout) in (1usize..3, 1usize..3, 1usize..3),
        seed in 0u64..100,
    ) {
        let (h, w, kh, kw) = (5usize, 5usize, 3usize, 3usize);
        let x = Tensor::from_vec(
            (0..bsz * cin * h * w).map(|i| fill(seed, i)).collect(),
            &[bsz, cin, h, w],
        );
        let wt = Tensor::from_vec(
            (0..cout * cin * kh * kw).map(|i| fill(seed ^ 0xff, i)).collect(),
            &[cout, cin, kh, kw],
        );
        let bias = Tensor::from_vec((0..cout).map(|i| fill(seed ^ 0xa5, i)).collect(), &[cout]);
        let spec = cdcl_tensor::Conv2dSpec { kernel: kh, stride: 1, padding: 1 };
        kernels::set_num_threads(1);
        let (serial, _) = x.conv2d(&wt, Some(&bias), spec);
        for t in [2usize, 8] {
            kernels::set_num_threads(t);
            let (threaded, _) = x.conv2d(&wt, Some(&bias), spec);
            kernels::set_num_threads(0);
            prop_assert_eq!(threaded.data(), serial.data());
        }
        kernels::set_num_threads(0);
    }
}

/// Deterministic pseudo-random fill (mirrors the unit tests' hash fill):
/// splittable across (seed, index) without any RNG state.
fn fill(seed: u64, i: usize) -> f32 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xbf58476d1ce4e5b9);
    z ^= z >> 27;
    ((z % 2000) as f32 - 1000.0) / 250.0
}
