//! `cdcl-serve`: batched TIL/CIL inference over a `cdcl-snapshot` file.
//!
//! Loads a checkpoint written by the trainer (or `save_snapshot`), re-runs
//! the graph verifier over every task's frozen `K_i`/`b_i` before answering
//! anything, then serves JSON-lines prediction requests with a dynamic
//! micro-batching queue — requests accumulate until `--max-batch` is
//! reached, a blank line arrives, or the stream ends, and each flush stacks
//! same-shaped work into one forward pass per `(mode, task)` group.
//!
//! ```text
//! cargo run --release -p cdcl-bench --bin cdcl-serve -- \
//!     --snapshot ckpts/task001.cdclsnap --bench-out BENCH_serve.json \
//!     < requests.jsonl > responses.jsonl
//! ```
//!
//! Request lines (`id` echoes back; `task` is required for `"til"`):
//!
//! ```text
//! {"id": 1, "mode": "til", "task": 0, "image": [0.0, ...]}   // c*h*w floats
//! {"id": 2, "mode": "cil", "image": [0.0, ...]}
//! ```
//!
//! Responses carry `pred` (argmax class — task-local for TIL, global for
//! CIL) and the full probability row; malformed requests get
//! `{"ok": false, "error": ...}` instead of aborting the server. With
//! `--tcp ADDR` the same protocol runs over a `std::net` accept loop
//! (single-threaded, one connection at a time — the kernel pool already
//! parallelizes the forward pass). Per-batch latency goes to
//! `cdcl-telemetry` as `serve_batch` events and is summarized in
//! `--bench-out` (`BENCH_serve.json`).

use cdcl_autograd::Graph;
use cdcl_bench::maybe_write_json;
use cdcl_core::CdclTrainer;
use cdcl_telemetry as telemetry;
use cdcl_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::time::Instant;

/// One JSON-lines prediction request.
#[derive(Debug, Deserialize)]
struct Request {
    /// Client-chosen id, echoed in the response (0 when omitted).
    id: Option<u64>,
    /// `"til"` or `"cil"`.
    mode: Option<String>,
    /// Task id (TIL only).
    task: Option<usize>,
    /// Flattened `c*h*w` image.
    image: Option<Vec<f32>>,
}

/// One JSON-lines prediction response.
#[derive(Debug, Serialize)]
struct Response {
    id: u64,
    ok: bool,
    mode: Option<String>,
    task: Option<usize>,
    /// Argmax class: task-local for TIL, global for CIL.
    pred: Option<usize>,
    /// Full probability row (softmax).
    probs: Option<Vec<f32>>,
    error: Option<String>,
}

impl Response {
    fn failure(id: u64, error: String) -> Self {
        Self {
            id,
            ok: false,
            mode: None,
            task: None,
            pred: None,
            probs: None,
            error: Some(error),
        }
    }
}

/// Latency/throughput summary written to `--bench-out`.
#[derive(Debug, Serialize)]
struct LatencySummary {
    mean: f64,
    p50: f64,
    p95: f64,
    max: f64,
}

#[derive(Debug, Serialize)]
struct ServeReport {
    snapshot: String,
    tasks: usize,
    total_classes: usize,
    max_batch: usize,
    requests: u64,
    failed_requests: u64,
    batches: u64,
    mean_batch_size: f64,
    latency_us: LatencySummary,
    throughput_rps: f64,
}

/// Running serve statistics; one entry per executed micro-batch.
#[derive(Debug, Default)]
struct ServeStats {
    requests: u64,
    failed: u64,
    /// `(batch_size, latency_us)` per forward pass.
    batches: Vec<(usize, f64)>,
}

impl ServeStats {
    fn report(&self, snapshot: &str, trainer: &CdclTrainer, max_batch: usize) -> ServeReport {
        let mut lat: Vec<f64> = self.batches.iter().map(|&(_, us)| us).collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
            lat[idx]
        };
        let total_us: f64 = lat.iter().sum();
        let served: u64 = self.batches.iter().map(|&(n, _)| n as u64).sum();
        ServeReport {
            snapshot: snapshot.to_string(),
            tasks: trainer.model().num_tasks(),
            total_classes: trainer.model().total_classes(),
            max_batch,
            requests: self.requests,
            failed_requests: self.failed,
            batches: self.batches.len() as u64,
            mean_batch_size: if self.batches.is_empty() {
                0.0
            } else {
                served as f64 / self.batches.len() as f64
            },
            latency_us: LatencySummary {
                mean: if lat.is_empty() {
                    0.0
                } else {
                    total_us / lat.len() as f64
                },
                p50: pct(0.50),
                p95: pct(0.95),
                max: lat.last().copied().unwrap_or(0.0),
            },
            throughput_rps: if total_us > 0.0 {
                served as f64 / (total_us / 1e6)
            } else {
                0.0
            },
        }
    }
}

struct ServeArgs {
    snapshot: PathBuf,
    tcp: Option<String>,
    max_batch: usize,
    bench_out: Option<String>,
    /// TCP mode: exit after this many connections (0 = forever).
    conns: usize,
}

fn parse_args() -> ServeArgs {
    let mut args = ServeArgs {
        snapshot: PathBuf::new(),
        tcp: None,
        max_batch: 32,
        bench_out: Some("BENCH_serve.json".to_string()),
        conns: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--snapshot" => {
                i += 1;
                args.snapshot = PathBuf::from(&argv[i]);
            }
            "--tcp" => {
                i += 1;
                args.tcp = Some(argv[i].clone());
            }
            "--max-batch" => {
                i += 1;
                args.max_batch = argv[i].parse().expect("--max-batch <n>");
                assert!(args.max_batch > 0, "--max-batch must be positive");
            }
            "--bench-out" => {
                i += 1;
                args.bench_out = match argv[i].as_str() {
                    "none" => None,
                    path => Some(path.to_string()),
                };
            }
            "--conns" => {
                i += 1;
                args.conns = argv[i].parse().expect("--conns <n>");
            }
            other => panic!(
                "unknown argument {other}; known: --snapshot --tcp --max-batch --bench-out --conns"
            ),
        }
        i += 1;
    }
    assert!(
        !args.snapshot.as_os_str().is_empty(),
        "--snapshot <path.cdclsnap> is required"
    );
    args
}

/// Re-verifies every restored task through the graph verifier before the
/// server answers anything: one forward-only graph per task (through that
/// task's `K_i`/`b_i` and TIL head) is checked for shape consistency and
/// the frozen contract over `expected_frozen_params()`. A snapshot that
/// passed the loader's structural validation but violates the freezing
/// invariants is refused here.
fn reverify_frozen(trainer: &CdclTrainer) -> Result<(), String> {
    let model = trainer.model();
    let frozen = model.expected_frozen_params();
    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    for t in 0..model.num_tasks() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, c, h, w]));
        let z = model.features_self(&mut g, x, t);
        let til = model.til_logits(&mut g, z, t);
        let lp = g.log_softmax_last(til);
        let loss = g.nll_loss(lp, &[0]);
        g.verify(loss, &frozen)
            .map_err(|e| format!("snapshot failed graph re-verification for task {t}: {e}"))?;
    }
    if telemetry::enabled() {
        telemetry::Event::new("serve")
            .name("frozen_reverified")
            .u64_field("tasks", model.num_tasks() as u64)
            .u64_field("frozen_params", frozen.len() as u64)
            .emit();
    }
    Ok(())
}

/// Validates one parsed request against the loaded model. Returns the
/// batching key `(is_til, task)` on success.
fn validate(trainer: &CdclTrainer, req: &Request) -> Result<(bool, usize), String> {
    let model = trainer.model();
    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    let image = req.image.as_ref().ok_or("missing `image`")?;
    if image.len() != c * h * w {
        return Err(format!(
            "image has {} floats, model expects {} (c={c}, h={h}, w={w})",
            image.len(),
            c * h * w
        ));
    }
    if !image.iter().all(|v| v.is_finite()) {
        return Err("image contains non-finite values".to_string());
    }
    match req.mode.as_deref() {
        Some("til") => {
            let task = req.task.ok_or("`til` requests need `task`")?;
            if task >= model.num_tasks() {
                return Err(format!(
                    "task {task} out of range (snapshot has {} tasks)",
                    model.num_tasks()
                ));
            }
            Ok((true, task))
        }
        Some("cil") => Ok((false, 0)),
        other => Err(format!(
            "unknown mode {other:?} (expected \"til\" or \"cil\")"
        )),
    }
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Runs the accumulated queue: groups by `(mode, task)`, executes one
/// forward pass per group, and writes responses in arrival order.
fn flush_batch(
    trainer: &CdclTrainer,
    pending: &mut Vec<(u64, Request)>,
    out: &mut dyn Write,
    stats: &mut ServeStats,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let queue = std::mem::take(pending);
    let mut responses: Vec<Option<Response>> = (0..queue.len()).map(|_| None).collect();
    // (key, member indexes into `queue`), insertion-ordered for determinism.
    let mut groups: Vec<((bool, usize), Vec<usize>)> = Vec::new();
    for (i, (id, req)) in queue.iter().enumerate() {
        stats.requests += 1;
        match validate(trainer, req) {
            Ok(key) => match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            },
            Err(e) => {
                stats.failed += 1;
                responses[i] = Some(Response::failure(*id, e));
            }
        }
    }

    let (c, (h, w)) = (
        trainer.config().backbone.in_channels,
        trainer.config().backbone.in_hw,
    );
    for ((is_til, task), members) in groups {
        let n = members.len();
        let mut data = Vec::with_capacity(n * c * h * w);
        for &i in &members {
            data.extend_from_slice(queue[i].1.image.as_deref().unwrap_or(&[]));
        }
        let images = Tensor::from_vec(data, &[n, c, h, w]);
        let started = Instant::now();
        let probs = if is_til {
            trainer.model().predict_til(&images, task)
        } else {
            trainer.model().predict_cil(&images)
        };
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        stats.batches.push((n, latency_us));
        if telemetry::enabled() {
            telemetry::Event::new("serve_batch")
                .name(if is_til { "til" } else { "cil" })
                .task(task)
                .u64_field("batch", n as u64)
                .f64_field("latency_us", latency_us)
                .emit();
        }
        let classes = probs.shape()[1];
        for (row, &i) in members.iter().enumerate() {
            let p = &probs.data()[row * classes..(row + 1) * classes];
            responses[i] = Some(Response {
                id: queue[i].0,
                ok: true,
                mode: Some(if is_til { "til" } else { "cil" }.to_string()),
                task: is_til.then_some(task),
                pred: Some(argmax(p)),
                probs: Some(p.to_vec()),
                error: None,
            });
        }
    }

    for resp in responses.into_iter().flatten() {
        let line = serde_json::to_string(&resp).expect("serialize response");
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// The serve loop over one request stream: queue lines, flush at
/// `--max-batch`, on a blank line, and at end-of-stream.
fn serve_stream(
    trainer: &CdclTrainer,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
    max_batch: usize,
    stats: &mut ServeStats,
) -> std::io::Result<()> {
    let mut pending: Vec<(u64, Request)> = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            flush_batch(trainer, &mut pending, writer, stats)?;
            continue;
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(req) => {
                let id = req.id.unwrap_or(0);
                pending.push((id, req));
            }
            Err(e) => {
                stats.requests += 1;
                stats.failed += 1;
                let resp = Response::failure(0, format!("bad request line: {e}"));
                let out = serde_json::to_string(&resp).expect("serialize response");
                writeln!(writer, "{out}")?;
                writer.flush()?;
            }
        }
        if pending.len() >= max_batch {
            flush_batch(trainer, &mut pending, writer, stats)?;
        }
    }
    flush_batch(trainer, &mut pending, writer, stats)
}

fn main() {
    let args = parse_args();
    let trainer = match CdclTrainer::resume_from(&args.snapshot) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cdcl-serve: cannot load {}: {e}", args.snapshot.display());
            std::process::exit(2);
        }
    };
    if let Err(e) = reverify_frozen(&trainer) {
        eprintln!("cdcl-serve: {e}");
        std::process::exit(3);
    }
    eprintln!(
        "cdcl-serve: loaded {} ({} tasks, {} classes), frozen params re-verified",
        args.snapshot.display(),
        trainer.model().num_tasks(),
        trainer.model().total_classes()
    );

    let mut stats = ServeStats::default();
    match &args.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = BufReader::new(stdin.lock());
            let mut writer = BufWriter::new(stdout.lock());
            serve_stream(
                &trainer,
                &mut reader,
                &mut writer,
                args.max_batch,
                &mut stats,
            )
            .expect("serve stdin/stdout");
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| panic!("cdcl-serve: bind {addr}: {e}"));
            eprintln!("cdcl-serve: listening on {addr}");
            let mut served = 0usize;
            for conn in listener.incoming() {
                let conn = conn.expect("accept connection");
                let peer = conn.peer_addr().map(|a| a.to_string());
                let mut reader = BufReader::new(conn.try_clone().expect("clone connection"));
                let mut writer = BufWriter::new(conn);
                if let Err(e) = serve_stream(
                    &trainer,
                    &mut reader,
                    &mut writer,
                    args.max_batch,
                    &mut stats,
                ) {
                    eprintln!("cdcl-serve: connection {peer:?} dropped: {e}");
                }
                served += 1;
                if args.conns > 0 && served >= args.conns {
                    break;
                }
            }
        }
    }

    let report = stats.report(
        &args.snapshot.display().to_string(),
        &trainer,
        args.max_batch,
    );
    maybe_write_json(&args.bench_out, &report);
    telemetry::flush();
    eprintln!(
        "cdcl-serve: {} requests ({} failed) in {} batches, mean batch {:.2}, p50 {:.0}us, throughput {:.1} rps",
        report.requests,
        report.failed_requests,
        report.batches,
        report.mean_batch_size,
        report.latency_us.p50,
        report.throughput_rps
    );
}
