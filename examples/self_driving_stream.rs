//! The paper's motivating scenario (§I): a self-driving car first learns
//! supervised city driving (London), must generalize to *unlabelled*
//! related roads (countryside), and then keeps encountering new driving
//! tasks (France: new signs, opposite side) — without forgetting how to
//! read the earlier domains.
//!
//! We model this with a custom [`DomainPairConfig`]: each task is a batch
//! of new "road situation" classes, the source domain is the labelled
//! simulator/city footage and the target domain the unlabelled countryside
//! footage. CDCL is compared with DER++ — a strong single-domain continual
//! learner that cannot use the unlabelled target data.
//!
//! ```text
//! cargo run --release -p cdcl --example self_driving_stream
//! ```

use cdcl::baselines::{BaselineConfig, DerTrainer, DerVariant};
use cdcl::core::{run_stream, CdclConfig, CdclTrainer};
use cdcl::data::DomainPairConfig;

fn main() {
    // 12 road-situation classes (signage, markings, hazards, ...) arriving
    // as 4 sequential driving tasks of 3 classes each. The countryside
    // rendering differs substantially from the labelled city footage
    // (domain_gap 0.45) — related, but not trivially transferable.
    let config = DomainPairConfig {
        name: "self-driving city->countryside".into(),
        num_classes: 12,
        tasks: 4,
        channels: 3,
        hw: (16, 16),
        latent_dim: 16,
        domain_gap: 0.45,
        task_drift: 0.4,
        within_class_std: 0.35,
        source_noise_std: 0.05,
        target_noise_std: 0.08,
        train_per_class: 16,
        target_train_per_class: 16,
        test_per_class: 10,
        seed: 2024,
    };
    let stream = config.generate();
    println!(
        "driving stream: {} tasks of {} situations each\n",
        stream.num_tasks(),
        stream.tasks[0].num_classes()
    );

    let mut cdcl_cfg = CdclConfig::default();
    cdcl_cfg.backbone.in_channels = 3;
    let cdcl = run_stream(&mut CdclTrainer::new(cdcl_cfg), &stream);

    let mut der_cfg = BaselineConfig::default();
    der_cfg.backbone.in_channels = 3;
    let der = run_stream(
        &mut DerTrainer::new(DerVariant::DerPlusPlus, der_cfg),
        &stream,
    );

    println!("how well does each learner read the countryside (target) roads?");
    println!(
        "  CDCL  (uses unlabelled countryside footage): TIL {:5.1}%  FGT {:5.1}%",
        cdcl.til_acc_pct(),
        cdcl.til_fgt_pct()
    );
    println!(
        "  DER++ (labelled city footage only)         : TIL {:5.1}%  FGT {:5.1}%",
        der.til_acc_pct(),
        der.til_fgt_pct()
    );
    let gain = cdcl.til_acc_pct() - der.til_acc_pct();
    println!(
        "\nunsupervised cross-domain adaptation is worth {gain:+.1} accuracy points \
         on this stream — the car that watches the unlabelled countryside learns it."
    );
}
