//! Dependency-free data-parallel execution built on [`std::thread::scope`].
//!
//! There is no persistent pool object: each parallel region spawns scoped
//! worker threads, which lets borrowed slices cross into workers without
//! `Arc` or lifetime erasure and keeps the module free of unsafe code and
//! external crates.
//!
//! # Thread-count policy
//!
//! The worker count is resolved once per process, in this order:
//!
//! 1. [`set_num_threads`] (a test/benchmark override),
//! 2. the `CDCL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `CDCL_THREADS=1` (or `set_num_threads(1)`) runs every region inline on
//! the calling thread — byte-for-byte the single-threaded code path, with no
//! threads spawned at all.
//!
//! # Determinism
//!
//! Work is always split into **contiguous, disjoint index ranges**, one per
//! worker, and every output element is written by exactly one worker using
//! the same loop body the serial path uses. No reduction is ever split
//! across threads, so results are bitwise identical at every thread count.
//!
//! # Nesting
//!
//! Parallel regions started from inside a worker run inline: the outer
//! region already owns all the cores, and serialising the inner one keeps
//! the thread count bounded and the execution order fixed.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved default (env var, then hardware parallelism).
static DEFAULT: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    /// True on threads spawned by a parallel region; used to run nested
    /// regions inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The number of worker threads parallel regions may use.
///
/// Resolution order: [`set_num_threads`] override → `CDCL_THREADS` → the
/// machine's available parallelism. Always at least 1.
pub fn num_threads() -> usize {
    // ordering: flag — advisory control state; the protocol tolerates a stale read. (worker-count override; sized per call)
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *DEFAULT.get_or_init(|| {
        std::env::var("CDCL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Overrides [`num_threads`] process-wide (tests and benchmarks compare
/// thread counts within one process). Pass 0 to clear the override.
pub fn set_num_threads(n: usize) {
    // ordering: flag — advisory control state; the protocol tolerates a stale read. (worker-count override; sized per call)
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Minimum amount of per-thread work (in fused multiply-add units) below
/// which spawning a thread costs more than it saves.
const MIN_WORK_PER_THREAD: usize = 1 << 15;

/// How many workers a region of `units` chunks, each costing `work_per_unit`
/// FMA-units, should use. Returns 1 inside a worker (nested region), under
/// `CDCL_THREADS=1`, or when the region is too small to amortise a spawn.
fn effective_threads(units: usize, work_per_unit: usize) -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    let by_work = (units.saturating_mul(work_per_unit) / MIN_WORK_PER_THREAD).max(1);
    num_threads().min(units.max(1)).min(by_work)
}

/// Splits `0..units` into at most `threads` contiguous ranges of
/// near-equal length.
fn split_ranges(units: usize, threads: usize) -> Vec<Range<usize>> {
    let per = units.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| (t * per).min(units)..((t + 1) * per).min(units))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs `body(chunk_index, chunk)` for every `chunk_len`-sized piece of
/// `out`, distributing contiguous runs of chunks across worker threads.
///
/// `work_per_chunk` is the approximate FMA count per chunk, used to decide
/// how many threads the region deserves. Chunk `i` is always processed by
/// exactly one thread, and chunks assigned to a thread run in ascending
/// order, so the writes (and their rounding) match the serial loop exactly.
pub fn par_chunks_mut<F>(out: &mut [f32], chunk_len: usize, work_per_chunk: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(
        chunk_len > 0 && out.len().is_multiple_of(chunk_len),
        "uneven chunking"
    );
    let units = out.len() / chunk_len;
    let threads = effective_threads(units, work_per_chunk);
    if threads <= 1 {
        for (i, c) in out.chunks_mut(chunk_len).enumerate() {
            body(i, c);
        }
        return;
    }
    let ranges = split_ranges(units, threads);
    super::counters::record_spawns(ranges.len() as u64);
    std::thread::scope(|scope| {
        let mut rest = out;
        let body = &body;
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len() * chunk_len);
            rest = tail;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (off, c) in head.chunks_mut(chunk_len).enumerate() {
                    body(range.start + off, c);
                }
            });
        }
    });
}

/// Maps `body` over contiguous sub-ranges of `0..units` on worker threads
/// and concatenates the per-range outputs in range order, so the result is
/// identical to `body(0..units)` run serially.
///
/// `work_per_unit` is the approximate FMA count per unit (see
/// [`par_chunks_mut`]).
pub fn par_map_ranges<T, F>(units: usize, work_per_unit: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let threads = effective_threads(units, work_per_unit);
    if threads <= 1 {
        return body(0..units);
    }
    let ranges = split_ranges(units, threads);
    super::counters::record_spawns(ranges.len() as u64);
    std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    body(range)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_exactly() {
        for units in [0usize, 1, 5, 16, 17] {
            for threads in [1usize, 2, 3, 8] {
                let ranges = split_ranges(units, threads);
                let mut covered = Vec::new();
                for r in &ranges {
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..units).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn par_chunks_matches_serial_at_any_thread_count() {
        let serial: Vec<f32> = (0..64).map(|i| (i * 3 % 7) as f32).collect();
        for threads in [1usize, 2, 5, 8] {
            set_num_threads(threads);
            let mut out = vec![0.0f32; 64];
            // Force parallelism despite the small size via a huge work hint.
            par_chunks_mut(&mut out, 4, usize::MAX / 64, |i, c| {
                for (j, v) in c.iter_mut().enumerate() {
                    *v = ((i * 4 + j) * 3 % 7) as f32;
                }
            });
            assert_eq!(out, serial);
        }
        set_num_threads(0);
    }

    #[test]
    fn par_map_preserves_order() {
        set_num_threads(4);
        let got = par_map_ranges(100, usize::MAX / 100, |r| r.collect::<Vec<_>>());
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        set_num_threads(0);
    }

    #[test]
    fn nested_regions_run_inline() {
        set_num_threads(4);
        let got = par_map_ranges(8, usize::MAX / 8, |outer| {
            outer
                .flat_map(|o| {
                    // A nested region must not deadlock or reorder anything.
                    let inner = par_map_ranges(4, usize::MAX / 4, |r| r.collect::<Vec<_>>());
                    inner.into_iter().map(move |i| (o, i))
                })
                .collect()
        });
        let expected: Vec<(usize, usize)> =
            (0..8).flat_map(|o| (0..4).map(move |i| (o, i))).collect();
        assert_eq!(got, expected);
        set_num_threads(0);
    }
}
