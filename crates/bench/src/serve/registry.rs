//! The snapshot registry: many models, each hot-swappable (DESIGN.md §13).
//!
//! A [`SnapshotRegistry`] maps model ids to [`ModelSlot`]s. Each slot holds
//! the currently served [`LoadedModel`] behind an `RwLock<Arc<…>>`: request
//! execution clones the `Arc` (a pointer copy under a read lock) and runs
//! the whole forward pass against that immutable version, while `RELOAD`
//! builds and verifies the replacement **off-lock** and then swaps the
//! `Arc` under the write lock — in-flight requests finish on the version
//! they started with and nothing is dropped. Every candidate version goes
//! through [`CdclTrainer::verify_frozen_serving`] and an input-shape
//! compatibility check before it can be swapped in.

use super::admission::Admission;
use super::metrics;
use cdcl_core::CdclTrainer;
use cdcl_obs::{CounterCore, GaugeCore, HistogramCore};
use cdcl_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The model id unadorned requests route to when exactly one model is
/// loaded, and the id `--snapshot` registers its model under.
pub const DEFAULT_MODEL: &str = "default";

/// Poison-tolerant read lock: a panicked holder cannot half-update an
/// `Arc` swap or a push-only Vec, so recovering the guard is sound.
fn read_lock<'l, T>(
    l: &'l RwLock<T>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<RwLockReadGuard<'l, T>> {
    let guard = match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

fn write_lock<'l, T>(
    l: &'l RwLock<T>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<RwLockWriteGuard<'l, T>> {
    let guard = match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

/// Model ids become metric label values and RELOAD verb operands, so they
/// are restricted to a shell-and-Prometheus-safe alphabet.
pub fn valid_model_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// One immutable, verified snapshot version being served.
pub struct LoadedModel {
    /// Registry id this version serves under.
    pub id: String,
    /// Monotone per-slot version, starting at 1; bumped by every reload.
    pub version: u64,
    /// Source path (`None` for models registered from memory in tests).
    pub path: Option<PathBuf>,
    /// The restored learner (model + config + centroids).
    pub trainer: CdclTrainer,
}

/// The per-model metric series, resolved from the §13 families once at
/// slot registration so record sites never lock the metrics registry.
pub struct ModelMetrics {
    pub requests: Arc<CounterCore>,
    pub failed: Arc<CounterCore>,
    pub busy: Arc<CounterCore>,
    pub reloads: Arc<CounterCore>,
    pub latency_us: Arc<HistogramCore>,
    pub inflight: Arc<GaugeCore>,
}

impl ModelMetrics {
    fn for_model(id: &str) -> Self {
        Self {
            requests: metrics::MODEL_REQUESTS_TOTAL.with(id),
            failed: metrics::MODEL_FAILED_TOTAL.with(id),
            busy: metrics::MODEL_BUSY_TOTAL.with(id),
            reloads: metrics::MODEL_RELOADS_TOTAL.with(id),
            latency_us: metrics::MODEL_LATENCY_US.with(id),
            inflight: metrics::MODEL_INFLIGHT.with(id),
        }
    }
}

/// One registered model: the swappable current version plus its admission
/// state and metric series. Slots are append-only — a model, once
/// registered, stays addressable for the life of the server.
pub struct ModelSlot {
    id: String,
    current: RwLock<Arc<LoadedModel>>,
    /// Per-model in-flight quota (shared with every admitted [`super::admission::Ticket`]).
    pub admission: Arc<Admission>,
    /// Pre-resolved per-model metric series.
    pub metrics: ModelMetrics,
    /// Trace context of the most recent traced `RELOAD`, keyed by the
    /// version it installed: the first batch served on that version emits
    /// a `first_serve` span parented here, closing the distributed
    /// publish→visible loop (DESIGN.md §16). Only touched on traced
    /// reloads and on traced batches — untraced serving never locks it.
    first_serve: Mutex<Option<(u64, telemetry::ctx::TraceContext)>>,
}

/// Poison-tolerant first-serve lock: the slot holds a single `Option`
/// overwrite, so recovering from a poisoned mutex is sound. The call-site
/// string is the canonical witness label, like the wrappers above.
fn lock_first_serve<'m>(
    m: &'m Mutex<Option<(u64, telemetry::ctx::TraceContext)>>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<
    std::sync::MutexGuard<'m, Option<(u64, telemetry::ctx::TraceContext)>>,
> {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

impl ModelSlot {
    /// The registry id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The currently served version — an `Arc` clone under a read lock, so
    /// a concurrent `RELOAD` never invalidates the returned model.
    pub fn current(&self) -> Arc<LoadedModel> {
        read_lock(&self.current, "registry.current").clone()
    }

    /// Atomically replaces the served version. In-flight requests keep
    /// their `Arc` to the old version and complete on it.
    fn swap(&self, next: Arc<LoadedModel>) {
        *write_lock(&self.current, "registry.current") = next;
    }

    /// Arms the first-serve hook: the next batch executed against
    /// `version` will emit a `first_serve` span parented to `ctx` (the
    /// reload span of the traced `RELOAD` that installed the version). A
    /// newer traced reload simply overwrites an unclaimed hook — the
    /// superseded version will never serve its first batch.
    pub fn set_pending_first_serve(&self, version: u64, ctx: telemetry::ctx::TraceContext) {
        *lock_first_serve(&self.first_serve, "registry.first_serve") = Some((version, ctx));
    }

    /// Claims the first-serve hook for `version`, if armed. Returns the
    /// reload trace context exactly once per traced reload.
    pub fn take_pending_first_serve(&self, version: u64) -> Option<telemetry::ctx::TraceContext> {
        let mut slot = lock_first_serve(&self.first_serve, "registry.first_serve");
        match *slot {
            Some((v, ctx)) if v == version => {
                *slot = None;
                Some(ctx)
            }
            _ => None,
        }
    }
}

/// All models this server instance is serving.
pub struct SnapshotRegistry {
    models: RwLock<Vec<Arc<ModelSlot>>>,
    /// Per-model quota applied to every slot (0 = unlimited).
    max_inflight: usize,
}

impl SnapshotRegistry {
    /// An empty registry whose slots shed load beyond `max_inflight`
    /// admitted requests per model (0 = unlimited).
    pub fn new(max_inflight: usize) -> Self {
        Self {
            models: RwLock::new(Vec::new()),
            max_inflight,
        }
    }

    /// Registers `trainer` under `id`, or hot-swaps it into the existing
    /// slot of that id. The candidate is re-verified (frozen contract) and,
    /// on a swap, checked for input-shape compatibility with the version it
    /// replaces. Returns the slot and the version now being served.
    pub fn insert_trainer(
        &self,
        id: &str,
        trainer: CdclTrainer,
        path: Option<PathBuf>,
    ) -> Result<(Arc<ModelSlot>, u64), String> {
        if !valid_model_id(id) {
            return Err(format!(
                "invalid model id {id:?} (1-64 chars of [A-Za-z0-9._-])"
            ));
        }
        trainer.verify_frozen_serving()?;
        let existing = self.find(id);
        match existing {
            Some(slot) => {
                let old = slot.current();
                if old.trainer.input_dims() != trainer.input_dims() {
                    return Err(format!(
                        "model {id}: incompatible input shape {:?} (serving {:?})",
                        trainer.input_dims(),
                        old.trainer.input_dims()
                    ));
                }
                let version = old.version + 1;
                slot.swap(Arc::new(LoadedModel {
                    id: id.to_string(),
                    version,
                    path,
                    trainer,
                }));
                slot.metrics.reloads.add(1);
                metrics::RELOADS_TOTAL.inc();
                if telemetry::enabled() {
                    telemetry::Event::new("serve")
                        .name("model_reloaded")
                        .str_field("model", id)
                        .u64_field("version", version)
                        .emit();
                }
                Ok((slot, version))
            }
            None => {
                let slot = Arc::new(ModelSlot {
                    id: id.to_string(),
                    current: RwLock::new(Arc::new(LoadedModel {
                        id: id.to_string(),
                        version: 1,
                        path,
                        trainer,
                    })),
                    admission: Arc::new(Admission::new(self.max_inflight)),
                    metrics: ModelMetrics::for_model(id),
                    first_serve: Mutex::new(None),
                });
                write_lock(&self.models, "registry.models").push(slot.clone());
                Ok((slot, 1))
            }
        }
    }

    /// Loads the snapshot at `path` and registers (or hot-swaps) it under
    /// `id`. This is the `RELOAD <model> <path>` verb: the load, CRC
    /// validation, and frozen re-verification all happen before the swap,
    /// so a bad file can never displace a serving version.
    pub fn load(&self, id: &str, path: &Path) -> Result<(Arc<ModelSlot>, u64), String> {
        let trainer = CdclTrainer::resume_from(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        self.insert_trainer(id, trainer, Some(path.to_path_buf()))
    }

    fn find(&self, id: &str) -> Option<Arc<ModelSlot>> {
        read_lock(&self.models, "registry.models")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    /// Resolves a request's model id. `None` routes to the sole model when
    /// exactly one is loaded (single-tenant back-compat) and is an error
    /// otherwise.
    pub fn get(&self, id: Option<&str>) -> Result<Arc<ModelSlot>, String> {
        match id {
            Some(id) => self
                .find(id)
                .ok_or_else(|| format!("unknown model {id:?} (see MODELS)")),
            None => {
                let models = read_lock(&self.models, "registry.models");
                match models.len() {
                    0 => Err("no models loaded".to_string()),
                    1 => Ok(models[0].clone()),
                    n => Err(format!(
                        "request needs \"model\" ({n} models loaded; see MODELS)"
                    )),
                }
            }
        }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        read_lock(&self.models, "registry.models").len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first-registered model (the `--snapshot`/first `--model` one):
    /// what the single-model bench report describes.
    pub fn primary(&self) -> Option<Arc<ModelSlot>> {
        read_lock(&self.models, "registry.models").first().cloned()
    }

    /// The `MODELS` verb payload: a JSON array of
    /// `{"model","version","tasks","centroid_tasks","classes","path","inflight"}`.
    /// `version` and `centroid_tasks` (tasks with a non-empty archived
    /// Eq.-17 centroid set) together let the `cdcl-traind` publish loop —
    /// and operators — verify a `RELOAD` actually advanced the model.
    pub fn models_json(&self) -> String {
        let slots = read_lock(&self.models, "registry.models");
        let rows: Vec<String> = slots
            .iter()
            .map(|slot| {
                let m = slot.current();
                format!(
                    "{{\"model\":\"{}\",\"version\":{},\"tasks\":{},\"centroid_tasks\":{},\"classes\":{},\"path\":{},\"inflight\":{}}}",
                    slot.id,
                    m.version,
                    m.trainer.model().num_tasks(),
                    m.trainer
                        .task_centroids()
                        .iter()
                        .filter(|c| c.shape()[0] > 0)
                        .count(),
                    m.trainer.model().total_classes(),
                    match &m.path {
                        Some(p) => format!("\"{}\"", p.display().to_string().replace('\\', "/")),
                        None => "null".to_string(),
                    },
                    slot.admission.inflight(),
                )
            })
            .collect();
        drop(slots);
        format!("[{}]", rows.join(","))
    }
}
