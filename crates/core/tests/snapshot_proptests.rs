//! Property tests for snapshot-loading paranoia (DESIGN.md §10).
//!
//! The loader's contract: a corrupted, truncated, or garbage snapshot must
//! come back as a typed `SnapshotError` — never a panic, and never a
//! half-restored trainer. The format makes this checkable exhaustively at
//! the byte level: every byte of a snapshot is covered by the header CRC,
//! exactly one section CRC, or the trailing-length check, so *any*
//! single-byte XOR and *any* truncation must be detected.

use cdcl_core::{CdclConfig, CdclTrainer, ContinualLearner};
use cdcl_data::{mnist_usps, MnistUspsDirection, Scale};
use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::sync::OnceLock;

/// One real snapshot from a small trained learner (two tasks, so frozen
/// keys, rehearsal records, and centroids are all populated). Built once:
/// the corruption cases only need the bytes.
fn valid_snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Smoke);
        let mut config = CdclConfig::smoke();
        config.epochs = 2;
        config.warmup_epochs = 1;
        let mut trainer = CdclTrainer::new(config);
        trainer.learn_task(&stream.tasks[0]);
        trainer.learn_task(&stream.tasks[1]);
        trainer.snapshot_bytes()
    })
}

proptest! {
    /// Flipping any bits of any single byte is detected: load returns a
    /// typed error and never panics.
    #[test]
    fn single_byte_corruption_always_errors(
        pos in 0usize..1 << 24,
        flip in 1u16..256,
    ) {
        let base = valid_snapshot();
        let mut bytes = base.to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip as u8; // nonzero XOR: guaranteed to differ
        let loaded = CdclTrainer::from_snapshot_bytes(&bytes);
        prop_assert!(
            loaded.is_err(),
            "byte {pos} XOR {flip:#x} loaded successfully"
        );
    }

    /// Truncating the snapshot at any point is detected.
    #[test]
    fn truncation_always_errors(keep in 0usize..1 << 24) {
        let base = valid_snapshot();
        let keep = keep % base.len(); // strictly shorter than the original
        let loaded = CdclTrainer::from_snapshot_bytes(&base[..keep]);
        prop_assert!(loaded.is_err(), "truncation to {keep} bytes loaded");
    }

    /// Appending trailing junk is detected (the container pins its exact
    /// length, so a valid prefix plus garbage is still rejected).
    #[test]
    fn trailing_garbage_always_errors(tail in vec(0u16..256, 1..64)) {
        let mut bytes = valid_snapshot().to_vec();
        bytes.extend(tail.iter().map(|&b| b as u8));
        prop_assert!(CdclTrainer::from_snapshot_bytes(&bytes).is_err());
    }

    /// Arbitrary garbage never panics the loader.
    #[test]
    fn random_garbage_never_panics(data in vec(0u16..256, 0..4096)) {
        let bytes: Vec<u8> = data.iter().map(|&b| b as u8).collect();
        let loaded = CdclTrainer::from_snapshot_bytes(&bytes);
        // Random bytes cannot produce the magic + a valid header CRC.
        prop_assert!(loaded.is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The untampered snapshot keeps loading, and re-saving the loaded
    /// trainer reproduces the bytes exactly — interleaved with the
    /// corruption runs above to rule out shared-state leakage.
    #[test]
    fn untampered_snapshot_round_trips(_case in 0usize..8) {
        let base = valid_snapshot();
        let loaded = CdclTrainer::from_snapshot_bytes(base)
            .map_err(|e| format!("valid snapshot rejected: {e}"))?;
        prop_assert_eq!(loaded.snapshot_bytes(), base.to_vec());
    }
}
