//! Criterion micro-benchmarks validating the paper's §IV-D complexity
//! claim: a CDCL forward pass costs
//! `O(n·L_c + (d·n² + n·d²)·L_a)` — the tokenizer is linear in the pixel
//! count and the attention stack is quadratic in the token count `n` and in
//! the embedding dimension `d`.
//!
//! Sweeps hold everything fixed except one of `n` (via input resolution) or
//! `d`, so the scaling trend is visible directly in the Criterion report.

use std::hint::black_box;

use cdcl_autograd::Graph;
use cdcl_nn::{AttentionMode, Backbone, BackboneConfig};
use cdcl_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn backbone(hw: usize, d: usize, depth: usize) -> (Backbone, Tensor) {
    let mut rng = SmallRng::seed_from_u64(7);
    let config = BackboneConfig {
        in_channels: 1,
        in_hw: (hw, hw),
        embed_dim: d,
        depth,
        tokenizer_stages: 2,
        tokenizer_kernel: 3,
        mlp_ratio: 2,
        attention: AttentionMode::TaskKeyed,
        attn_softmax: true,
    };
    let mut b = Backbone::new(&mut rng, config);
    b.add_task(&mut rng);
    let img = Tensor::randn(&mut rng, &[1, 1, hw, hw], 1.0);
    (b, img)
}

/// Forward cost vs token count `n` (n = (hw/4)²): the attention term is
/// quadratic in n.
fn bench_tokens(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_vs_tokens");
    for hw in [8usize, 16, 24, 32] {
        let (b, img) = backbone(hw, 32, 2);
        let n = b.token_count();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let x = g.input(img.clone());
                let z = b.features_self(&mut g, x, 0);
                black_box(g.value(z).sum())
            });
        });
    }
    group.finish();
}

/// Forward cost vs embedding dimension `d`: the projection term is
/// quadratic in d.
fn bench_embed_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_vs_embed_dim");
    for d in [16usize, 32, 64, 96] {
        let (b, img) = backbone(16, d, 2);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let x = g.input(img.clone());
                let z = b.features_self(&mut g, x, 0);
                black_box(g.value(z).sum())
            });
        });
    }
    group.finish();
}

/// Forward cost vs encoder depth `L_a`: linear.
fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_vs_depth");
    for depth in [1usize, 2, 4] {
        let (b, img) = backbone(16, 32, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let x = g.input(img.clone());
                let z = b.features_self(&mut g, x, 0);
                black_box(g.value(z).sum())
            });
        });
    }
    group.finish();
}

/// Cross-attention vs self-attention overhead: the cross path runs two
/// streams, so it should cost roughly 2–3× the self path, not more.
fn bench_cross_vs_self(c: &mut Criterion) {
    let (b, img) = backbone(16, 32, 2);
    let mut group = c.benchmark_group("cross_vs_self");
    group.bench_function("self", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let x = g.input(img.clone());
            let z = b.features_self(&mut g, x, 0);
            black_box(g.value(z).sum())
        });
    });
    group.bench_function("cross", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xs = g.input(img.clone());
            let xt = g.input(img.clone());
            let z = b.features_cross(&mut g, xs, xt, 0);
            black_box(g.value(z).sum())
        });
    });
    group.finish();
}

/// Kernel-level benches: GEMM and conv2d, the two hot loops.
fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let a = Tensor::randn(&mut rng, &[64, 64], 1.0);
    let b = Tensor::randn(&mut rng, &[64, 64], 1.0);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).sum()))
    });
    let img = Tensor::randn(&mut rng, &[4, 8, 16, 16], 1.0);
    let w = Tensor::randn(&mut rng, &[16, 8, 3, 3], 0.5);
    let spec = cdcl_tensor::Conv2dSpec {
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    c.bench_function("conv2d_16x16x8to16", |bench| {
        bench.iter(|| black_box(img.conv2d(&w, None, spec).0.sum()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tokens, bench_embed_dim, bench_depth, bench_cross_vs_self, bench_kernels
}
criterion_main!(benches);
