//! The `cdcl-traind` engine: an online trainer daemon with task-free
//! drift detection, closing the train→serve loop (DESIGN.md §15).
//!
//! This module tree is the whole daemon minus `main` — the `cdcl-traind`
//! bin is a thin wrapper and the integration tests drive [`run_tcp`] /
//! [`ingest_stream`] in-process, mirroring the `cdcl-serve` layout. The
//! pieces:
//!
//! * the **ingest protocol**: line-delimited JSON samples
//!   (`{"role":"source","label":l,"image":[…]}` /
//!   `{"role":"target","image":[…]}`) accumulate into the current window;
//!   a **blank line commits the window** — it is drift-scored, staged, and
//!   answered with one JSON ack describing the detector state (and, when a
//!   round ran, the publish outcome). `STATUS` and `METRICS` verbs and
//!   `GET /metrics` HTTP scrapes work on any connection, as in serve;
//! * the **drift loop**: each committed window's target samples are scored
//!   against the archived per-task Eq.-17 centroids
//!   ([`cdcl_core::CdclTrainer::drift_score`]) and fed to the
//!   CUSUM/EWMA [`DriftDetector`]; a sustained excursion declares a new
//!   task at the window where the statistic left zero;
//! * the **online round**: on detection (or, with an empty model, after
//!   `--bootstrap-windows` committed windows), the staged windows from the
//!   boundary onward become a [`TaskData`] and run through the existing
//!   [`CdclTrainer`] — fresh `(K_i, b_i)`, warm-up, adaptation,
//!   pseudo-labeling, rehearsal, with per-task checkpoints via
//!   `CDCL_CKPT_DIR` — inside the window-commit call, so the committing
//!   client's ack observes the finished round (deterministic driving);
//! * the **publish loop** ([`publish`]): the post-round snapshot is
//!   atomically written to `--publish-dir` and `RELOAD`ed into every
//!   `--notify` serve instance, verified through `MODELS`.
//!
//! Locking: all mutable state lives in one `Mutex<TraindState>` behind the
//! witnessed [`lock_traind`] wrapper. The lock is never held across
//! socket or filesystem I/O — ingest parsing, acks, and the entire publish
//! exchange happen outside it (enforced by the `cdcl-analyze` blocking
//! scope on `crates/bench/src/traind/`).

pub mod metrics;
pub mod publish;

use cdcl_core::{
    CdclConfig, CdclTrainer, ContinualLearner, DriftConfig, DriftDecision, DriftDetector,
    DriftScore,
};
use cdcl_data::{Sample, TaskData};
use cdcl_telemetry as telemetry;
use cdcl_tensor::Tensor;
use publish::{PublishOutcome, RoundArtifact};
use serde::Deserialize;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Labels above this are rejected as malformed (they would grow the CIL
/// head unboundedly from one bad line).
const MAX_LABEL: usize = 4096;

/// Parsed `cdcl-traind` command line.
#[derive(Debug, Clone)]
pub struct TraindArgs {
    /// TCP listen address (`None` = stdio mode).
    pub listen: Option<String>,
    /// Model id used for `RELOAD` against the notify targets.
    pub model: String,
    /// Directory the post-round snapshots are published into.
    pub publish_dir: PathBuf,
    /// `cdcl-serve` addresses to `RELOAD` after every publish.
    pub notify: Vec<String>,
    /// Warm-start snapshot (otherwise the daemon starts with zero tasks
    /// and bootstraps its first task from the stream).
    pub snapshot: Option<PathBuf>,
    /// Input image layout for a fresh (non-warm-start) trainer.
    pub in_channels: usize,
    pub in_hw: (usize, usize),
    /// Online-round epoch budget (total / warm-up).
    pub epochs: usize,
    pub warmup_epochs: usize,
    pub seed: u64,
    /// TCP accept-loop workers.
    pub threads: usize,
    /// TCP mode: exit after this many connections (0 = forever).
    pub conns: usize,
    /// Committed windows required before the bootstrap round (task 0).
    pub bootstrap_windows: usize,
    /// Staging-ring capacity in windows; older windows are evicted (and
    /// counted in `cdcl_traind_dropped_windows_total`).
    pub max_stage: usize,
    /// Checkpoint directory exported as `CDCL_CKPT_DIR` for the trainer's
    /// per-task checkpoint hook.
    pub ckpt_dir: Option<String>,
}

impl Default for TraindArgs {
    fn default() -> Self {
        Self {
            listen: None,
            model: "default".to_string(),
            publish_dir: PathBuf::from("publish"),
            notify: Vec::new(),
            snapshot: None,
            in_channels: 1,
            in_hw: (8, 8),
            epochs: 2,
            warmup_epochs: 1,
            seed: 7,
            threads: 2,
            conns: 1,
            bootstrap_windows: 2,
            max_stage: 64,
            ckpt_dir: None,
        }
    }
}

/// The `cdcl-traind` usage text printed on any CLI error.
pub fn traind_usage() -> String {
    "usage: cdcl-traind [--listen <addr>] [--model <id>] [--publish-dir <dir>]\n\
     \x20   [--notify <addr>]... [--snapshot <path.cdclsnap>] [--ckpt-dir <dir>]\n\
     \x20   [--in-channels <n>] [--in-hw <h>x<w>] [--epochs <n>] [--warmup <n>]\n\
     \x20   [--seed <n>] [--threads <n>] [--conns <n>]\n\
     \x20   [--bootstrap-windows <n>] [--max-stage <n>]\n\
     drift thresholds come from the CDCL_TRAIND_* environment (see README)"
        .to_string()
}

fn flag_value(argv: &[String], i: usize) -> Result<&str, String> {
    argv.get(i + 1)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{} needs a value\n{}", argv[i], traind_usage()))
}

fn flag_usize(argv: &[String], i: usize) -> Result<usize, String> {
    let v = flag_value(argv, i)?;
    v.parse().map_err(|_| {
        format!(
            "{} expects a non-negative integer, got {v:?}\n{}",
            argv[i],
            traind_usage()
        )
    })
}

/// Parses a `cdcl-traind` argument vector; every CLI mistake is a usage
/// error, never a panic.
pub fn parse_args_from(argv: &[String]) -> Result<TraindArgs, String> {
    let mut args = TraindArgs::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => args.listen = Some(flag_value(argv, i)?.to_string()),
            "--model" => {
                let id = flag_value(argv, i)?;
                if !crate::serve::registry::valid_model_id(id) {
                    return Err(format!(
                        "invalid model id {id:?} (1-64 chars of [A-Za-z0-9._-])\n{}",
                        traind_usage()
                    ));
                }
                args.model = id.to_string();
            }
            "--publish-dir" => args.publish_dir = PathBuf::from(flag_value(argv, i)?),
            "--notify" => args.notify.push(flag_value(argv, i)?.to_string()),
            "--snapshot" => args.snapshot = Some(PathBuf::from(flag_value(argv, i)?)),
            "--ckpt-dir" => args.ckpt_dir = Some(flag_value(argv, i)?.to_string()),
            "--in-channels" => args.in_channels = flag_usize(argv, i)?,
            "--in-hw" => {
                let v = flag_value(argv, i)?;
                let (h, w) = v
                    .split_once('x')
                    .and_then(|(h, w)| Some((h.parse().ok()?, w.parse().ok()?)))
                    .ok_or_else(|| {
                        format!("--in-hw expects <h>x<w>, got {v:?}\n{}", traind_usage())
                    })?;
                args.in_hw = (h, w);
            }
            "--epochs" => args.epochs = flag_usize(argv, i)?,
            "--warmup" => args.warmup_epochs = flag_usize(argv, i)?,
            "--seed" => args.seed = flag_usize(argv, i)? as u64,
            "--threads" => {
                args.threads = flag_usize(argv, i)?;
                if args.threads == 0 {
                    return Err(format!("--threads must be positive\n{}", traind_usage()));
                }
            }
            "--conns" => args.conns = flag_usize(argv, i)?,
            "--bootstrap-windows" => args.bootstrap_windows = flag_usize(argv, i)?.max(1),
            "--max-stage" => args.max_stage = flag_usize(argv, i)?.max(1),
            other => return Err(format!("unknown argument {other}\n{}", traind_usage())),
        }
        i += 2;
    }
    if args.epochs == 0 || args.epochs < args.warmup_epochs {
        return Err(format!(
            "--epochs must be positive and >= --warmup\n{}",
            traind_usage()
        ));
    }
    Ok(args)
}

/// Parses the process argument vector, exiting with usage on any error.
pub fn parse_args() -> TraindArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_args_from(&argv).unwrap_or_else(|e| {
        eprintln!("cdcl-traind: {e}");
        std::process::exit(2);
    })
}

/// One ingest line.
#[derive(Debug, Deserialize)]
struct Ingest {
    /// `"source"` (labeled) or `"target"` (unlabeled, the default).
    role: Option<String>,
    /// Task-local label; required for source samples.
    label: Option<usize>,
    /// Flattened `c*h*w` image.
    image: Option<Vec<f32>>,
}

/// One not-yet-consumed ingest window.
struct WindowStage {
    /// 0-based commit index (the boundary/ground-truth coordinate space).
    index: usize,
    source: Vec<Sample>,
    target: Vec<Sample>,
}

impl WindowStage {
    fn new(index: usize) -> Self {
        Self {
            index,
            source: Vec::new(),
            target: Vec::new(),
        }
    }
}

/// Everything the daemon mutates, behind one mutex.
pub struct TraindState {
    trainer: CdclTrainer,
    detector: DriftDetector,
    /// Committed windows not yet consumed by a round, oldest first.
    staged: VecDeque<WindowStage>,
    /// The window currently accumulating ingest lines.
    current: WindowStage,
    /// Maps detector observation index → stage window index (the detector
    /// only sees windows with target samples once a task exists).
    scored: Vec<usize>,
    /// Stage window index a latched detection claims as the new task's
    /// first window; cleared by the round that consumes it.
    pending_boundary: Option<usize>,
    last_boundary: Option<usize>,
    last_score: Option<DriftScore>,
    last_state: &'static str,
    last_publish_us: Option<f64>,
    detections: u64,
    rounds: u64,
    published: u64,
    publish_failed: u64,
    dropped_windows: u64,
}

/// Fields of one committed window's ack, captured under the lock.
struct WindowOutcome {
    window: usize,
    sources: usize,
    targets: usize,
    score: Option<DriftScore>,
    state: &'static str,
    statistic: f64,
    baseline: f64,
    streak: usize,
    boundary: Option<usize>,
    tasks: usize,
    detections: u64,
    rounds: u64,
}

impl TraindState {
    fn new(trainer: CdclTrainer, detector: DriftDetector) -> Self {
        Self {
            trainer,
            detector,
            staged: VecDeque::new(),
            current: WindowStage::new(0),
            scored: Vec::new(),
            pending_boundary: None,
            last_boundary: None,
            last_score: None,
            last_state: "bootstrap",
            last_publish_us: None,
            detections: 0,
            rounds: 0,
            published: 0,
            publish_failed: 0,
            dropped_windows: 0,
        }
    }

    /// Validates and stages one ingest line into the current window.
    fn ingest(&mut self, req: Ingest) -> Result<(), String> {
        let (c, h, w) = self.trainer.input_dims();
        let image = req.image.ok_or("missing `image`")?;
        if image.len() != c * h * w {
            return Err(format!("image length {} != {c}*{h}*{w}", image.len()));
        }
        let tensor = Tensor::from_vec(image, &[c, h, w]);
        match req.role.as_deref().unwrap_or("target") {
            "source" => {
                let label = req.label.ok_or("source sample needs `label`")?;
                if label >= MAX_LABEL {
                    return Err(format!("label {label} out of range (< {MAX_LABEL})"));
                }
                self.current.source.push(Sample {
                    image: tensor,
                    label,
                });
            }
            "target" => self.current.target.push(Sample {
                image: tensor,
                // Target labels are unknown by definition; training only
                // ever pseudo-labels these.
                label: 0,
            }),
            other => return Err(format!("unknown role {other:?} (source|target)")),
        }
        metrics::SAMPLES_TOTAL.inc();
        Ok(())
    }

    /// True when the staged windows from `from` onward can train a task:
    /// at least one labeled source and one target sample.
    fn trainable_from(&self, from: usize) -> bool {
        let has = |f: fn(&WindowStage) -> bool| self.staged.iter().any(|w| w.index >= from && f(w));
        has(|w| !w.source.is_empty()) && has(|w| !w.target.is_empty())
    }

    /// Commits the current window: stage it, drift-score it, and — on a
    /// sustained detection (or bootstrap readiness) — run the online round.
    /// Returns the ack fields and, when a round ran, the publish artifact.
    fn commit_window(&mut self, args: &TraindArgs) -> (WindowOutcome, Option<RoundArtifact>) {
        let (index, sources, targets) = {
            let _s = telemetry::span("ingest");
            let next = WindowStage::new(self.current.index + 1);
            let stage = std::mem::replace(&mut self.current, next);
            let index = stage.index;
            let (sources, targets) = (stage.source.len(), stage.target.len());
            metrics::WINDOWS_TOTAL.inc();
            self.staged.push_back(stage);
            while self.staged.len() > args.max_stage {
                self.staged.pop_front();
                self.dropped_windows += 1;
                metrics::DROPPED_WINDOWS_TOTAL.inc();
            }
            (index, sources, targets)
        };

        let mut score = None;
        let mut artifact = None;
        if self.trainer.model().num_tasks() == 0 {
            self.last_state = "bootstrap";
            if index + 1 >= args.bootstrap_windows && self.trainable_from(0) {
                artifact = Some(self.run_round(0, None));
            }
        } else {
            score = self
                .staged
                .back()
                .filter(|wdw| !wdw.target.is_empty())
                .and_then(|wdw| self.trainer.drift_score(&wdw.target));
            match score {
                None => self.last_state = "idle",
                Some(s) => {
                    self.scored.push(index);
                    metrics::DRIFT_SCORE.set(s.distance);
                    let decision = self.detector.observe(s.distance);
                    metrics::DRIFT_STATISTIC.set(self.detector.statistic());
                    metrics::DRIFT_BASELINE.set(self.detector.baseline());
                    self.last_state = decision.label();
                    if let DriftDecision::Detected { boundary } = decision {
                        // Map the detector's observation index back to the
                        // stage-window coordinate space.
                        let at = self.scored.get(boundary).copied().unwrap_or(index);
                        if self.pending_boundary.is_none() {
                            self.detections += 1;
                            metrics::DETECTIONS_TOTAL.inc();
                            if telemetry::enabled() {
                                telemetry::Event::new("traind")
                                    .name("drift_detected")
                                    .task(self.trainer.model().num_tasks())
                                    .u64_field("window", index as u64)
                                    .u64_field("boundary", at as u64)
                                    .f64_field("score", s.distance)
                                    .emit();
                            }
                        }
                        self.pending_boundary = Some(at);
                        self.last_boundary = Some(at);
                    }
                }
            }
            // A latched detection trains as soon as labeled source data
            // for the new task has arrived (possibly windows later).
            if let Some(b) = self.pending_boundary {
                if self.trainable_from(b) {
                    artifact = Some(self.run_round(b, Some(b)));
                }
            }
        }
        self.last_score = score;
        let outcome = WindowOutcome {
            window: index,
            sources,
            targets,
            score,
            state: self.last_state,
            statistic: self.detector.statistic(),
            baseline: self.detector.baseline(),
            streak: self.detector.streak(),
            boundary: self.last_boundary,
            tasks: self.trainer.model().num_tasks(),
            detections: self.detections,
            rounds: self.rounds,
        };
        (outcome, artifact)
    }

    /// One online training round over the staged windows from
    /// `from_window` onward: grows a fresh task through
    /// [`CdclTrainer::learn_task`] (warm-up, adaptation, pseudo-labeling,
    /// rehearsal, `CDCL_CKPT_DIR` checkpoint) and resets the detector to
    /// recalibrate against the enlarged centroid archive.
    fn run_round(&mut self, from_window: usize, boundary: Option<usize>) -> RoundArtifact {
        let mut source = Vec::new();
        let mut target = Vec::new();
        while let Some(wdw) = self.staged.pop_front() {
            if wdw.index >= from_window {
                source.extend(wdw.source);
                target.extend(wdw.target);
            }
        }
        let num_classes = source.iter().map(|s| s.label).max().map_or(1, |m| m + 1);
        let task_id = self.trainer.model().num_tasks();
        let total = self.trainer.model().total_classes();
        let task = TaskData {
            task_id,
            global_classes: (total..total + num_classes).collect(),
            source_train: source,
            target_train: target,
            target_test: Vec::new(),
        };
        {
            let _s = telemetry::span("online_round").task(task_id);
            let timer = metrics::ROUND_LATENCY_US.time();
            self.trainer.learn_task(&task);
            drop(timer);
        }
        self.rounds += 1;
        metrics::ROUNDS_TOTAL.inc();
        metrics::TASKS.set(self.trainer.model().num_tasks() as f64);
        self.detector.reset();
        self.pending_boundary = None;
        self.last_state = "trained";
        RoundArtifact {
            task: task_id,
            boundary,
            bytes: self.trainer.snapshot_bytes(),
            expected_tasks: self.trainer.model().num_tasks(),
            expected_centroid_tasks: self
                .trainer
                .task_centroids()
                .iter()
                .filter(|c| c.shape()[0] > 0)
                .count(),
        }
    }

    /// Folds one publish outcome into the counters.
    fn record_publish(&mut self, outcome: &PublishOutcome) {
        if outcome.ok {
            self.published += 1;
        } else {
            self.publish_failed += 1;
        }
        self.last_publish_us = Some(outcome.publish_us);
    }

    /// The `STATUS` verb payload.
    fn status_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"status\":{{\"tasks\":{},\"windows\":{},\"staged\":{},\"state\":{},\
             \"score\":{},\"statistic\":{},\"baseline\":{},\"streak\":{},\"calibrating\":{},\
             \"boundary\":{},\"detections\":{},\"rounds\":{},\"published\":{},\
             \"publish_failed\":{},\"dropped_windows\":{},\"last_publish_us\":{}}}}}",
            self.trainer.model().num_tasks(),
            self.current.index,
            self.staged.len(),
            json_str(self.last_state),
            fmt_opt_f64(self.last_score.map(|s| s.distance)),
            self.detector.statistic(),
            self.detector.baseline(),
            self.detector.streak(),
            self.detector.is_calibrating(),
            fmt_opt_usize(self.last_boundary),
            self.detections,
            self.rounds,
            self.published,
            self.publish_failed,
            self.dropped_windows,
            fmt_opt_f64(self.last_publish_us),
        )
    }
}

/// The daemon: parsed args plus the mutexed state.
pub struct TraindDaemon {
    pub args: TraindArgs,
    state: Mutex<TraindState>,
}

/// Poison-tolerant state lock: `learn_task` only panics on a checkpoint
/// write failure, after which the trainer state is still the coherent
/// pre-/post-round state of the last completed mutation, so recovering
/// the guard is sound.
fn lock_traind<'m>(
    m: &'m Mutex<TraindState>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<MutexGuard<'m, TraindState>> {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

impl TraindDaemon {
    /// Builds a daemon around an existing trainer with drift thresholds
    /// from the `CDCL_TRAIND_*` environment.
    pub fn new(args: TraindArgs, trainer: CdclTrainer) -> Self {
        Self::with_drift_config(args, trainer, DriftConfig::from_env())
    }

    /// Builds a daemon with an explicit drift configuration (tests inject
    /// thresholds here instead of mutating the process environment).
    pub fn with_drift_config(args: TraindArgs, trainer: CdclTrainer, drift: DriftConfig) -> Self {
        let detector = DriftDetector::new(drift);
        Self {
            args,
            state: Mutex::new(TraindState::new(trainer, detector)),
        }
    }

    /// The current `STATUS` payload.
    pub fn status(&self) -> String {
        lock_traind(&self.state, "traind.state").status_json()
    }

    /// Tasks currently held by the online trainer.
    pub fn tasks(&self) -> usize {
        lock_traind(&self.state, "traind.state")
            .trainer
            .model()
            .num_tasks()
    }
}

/// JSON-escapes a message for the hand-assembled replies.
fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("serialize string")
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

fn fmt_opt_usize(v: Option<usize>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "null".to_string(),
    }
}

fn registry_json() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_json()
}

fn registry_prometheus() -> String {
    cdcl_tensor::kernels::publish_registry();
    cdcl_obs::global().render_prometheus()
}

/// Renders one window ack from the commit outcome and the (possibly
/// absent) publish result. When the commit ran under a sampled trace the
/// ack carries its traceparent in a `trace` field, so stream clients can
/// correlate acks with the cross-process trace; with tracing disabled the
/// ack bytes are unchanged.
fn ack_json(
    outcome: &WindowOutcome,
    publish: Option<&PublishOutcome>,
    trace: Option<telemetry::ctx::TraceContext>,
) -> String {
    let publish_json = match publish {
        None => "null".to_string(),
        Some(p) => {
            let reloads: Vec<String> = p
                .reloads
                .iter()
                .map(|r| match r {
                    Ok(ack) => format!(
                        "{{\"addr\":{},\"version\":{},\"tasks\":{},\"centroid_tasks\":{}}}",
                        json_str(&ack.addr),
                        ack.version,
                        ack.tasks,
                        ack.centroid_tasks
                    ),
                    Err(e) => format!("{{\"error\":{}}}", json_str(e)),
                })
                .collect();
            format!(
                "{{\"ok\":{},\"path\":{},\"publish_us\":{},\"reloads\":[{}]}}",
                p.ok,
                json_str(&p.path.display().to_string()),
                p.publish_us,
                reloads.join(",")
            )
        }
    };
    let trace_json = match trace {
        Some(c) => format!(",\"trace\":{}", json_str(&c.encode())),
        None => String::new(),
    };
    format!(
        "{{\"ok\":true,\"window\":{},\"sources\":{},\"targets\":{},\"score\":{},\"margin\":{},\
         \"state\":{},\"statistic\":{},\"baseline\":{},\"streak\":{},\"boundary\":{},\
         \"tasks\":{},\"detections\":{},\"rounds\":{},\"publish\":{}{}}}",
        outcome.window,
        outcome.sources,
        outcome.targets,
        fmt_opt_f64(outcome.score.map(|s| s.distance)),
        fmt_opt_f64(outcome.score.map(|s| s.margin)),
        json_str(outcome.state),
        outcome.statistic,
        outcome.baseline,
        outcome.streak,
        fmt_opt_usize(outcome.boundary),
        outcome.tasks,
        outcome.detections,
        outcome.rounds,
        publish_json,
        trace_json
    )
}

/// Commits one window: the round (if any) runs under the state lock, the
/// publish exchange strictly after it — a slow serve instance can stall
/// this client's ack, never another connection's ingest.
fn commit_window(d: &TraindDaemon) -> String {
    // The distributed-trace root: one trace per committed window, covering
    // the in-process ingest → drift_detect → online_round → publish stages
    // (opened below on this thread, so they parent here automatically) and
    // — across the RELOAD wire — the serve-side reload + first_serve
    // stages (DESIGN.md §16).
    let root = telemetry::span("window_commit");
    let trace = root.context();
    let (outcome, artifact) = {
        let mut st = lock_traind(&d.state, "traind.state");
        st.commit_window(&d.args)
    };
    let publish = artifact.map(|a| publish::publish_round(&d.args, &a));
    if let Some(p) = &publish {
        let mut st = lock_traind(&d.state, "traind.state");
        st.record_publish(p);
    }
    ack_json(&outcome, publish.as_ref(), trace)
}

/// Handles one protocol line; returns the reply to write, if any
/// (well-formed sample lines are acked silently by the window commit).
fn process_line(d: &TraindDaemon, trimmed: &str) -> Option<String> {
    if trimmed.is_empty() {
        return Some(commit_window(d));
    }
    if trimmed == "STATUS" {
        return Some(d.status());
    }
    if trimmed == "METRICS" {
        return Some(format!("{{\"ok\":true,\"metrics\":{}}}", registry_json()));
    }
    match serde_json::from_str::<Ingest>(trimmed) {
        Ok(req) => {
            let result = {
                let mut st = lock_traind(&d.state, "traind.state");
                st.ingest(req)
            };
            match result {
                Ok(()) => None,
                Err(e) => Some(format!("{{\"ok\":false,\"error\":{}}}", json_str(&e))),
            }
        }
        Err(e) => Some(format!(
            "{{\"ok\":false,\"error\":{}}}",
            json_str(&format!("bad ingest line: {e}"))
        )),
    }
}

/// The ingest loop over one line stream. `first_line` carries a line the
/// caller already consumed while sniffing the protocol.
fn traind_lines(
    d: &TraindDaemon,
    first_line: Option<String>,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    let mut line = String::new();
    let mut first = first_line;
    loop {
        let current = match first.take() {
            Some(l) => l,
            None => {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    break; // EOF
                }
                line.clone()
            }
        };
        if let Some(reply) = process_line(d, current.trim()) {
            writeln!(writer, "{reply}")?;
            writer.flush()?;
        }
    }
    Ok(())
}

/// The ingest loop over one already-open stream (stdio mode, tests).
pub fn ingest_stream(
    d: &TraindDaemon,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    traind_lines(d, None, reader, writer)
}

/// Answers an HTTP `GET /metrics` scrape, exactly as `cdcl-serve` does.
fn http_metrics(
    request_line: &str,
    reader: &mut dyn BufRead,
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" {
        ("200 OK", registry_prometheus())
    } else {
        (
            "404 Not Found",
            format!("no such path {path}; try /metrics\n"),
        )
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Handles one accepted connection: `GET ` → metrics scrape, anything else
/// → the ingest protocol. All failures are connection-local.
fn handle_conn(d: &TraindDaemon, conn: TcpStream) {
    if let Err(e) = conn.set_nonblocking(false) {
        metrics::ACCEPT_ERRORS_TOTAL.inc();
        eprintln!("cdcl-traind: cannot configure accepted connection (dropping it): {e}");
        return;
    }
    let peer = conn.peer_addr().map(|a| a.to_string());
    let cloned = match conn.try_clone() {
        Ok(c) => c,
        Err(e) => {
            metrics::ACCEPT_ERRORS_TOTAL.inc();
            eprintln!("cdcl-traind: cannot clone connection {peer:?} (dropping it): {e}");
            return;
        }
    };
    let mut reader = BufReader::new(cloned);
    let mut writer = BufWriter::new(conn);
    let mut first = String::new();
    let result = match reader.read_line(&mut first) {
        Ok(0) => Ok(()),
        Ok(_) if first.starts_with("GET ") => http_metrics(&first, &mut reader, &mut writer),
        Ok(_) => traind_lines(d, Some(first), &mut reader, &mut writer),
        Err(e) => Err(e),
    };
    if let Err(e) = result {
        eprintln!("cdcl-traind: connection {peer:?} dropped: {e}");
    }
}

/// The TCP accept loop: `args.threads` workers share one nonblocking
/// listener (the `cdcl-serve` pattern). Exits after `args.conns`
/// connections in total (0 = run forever). Failed accepts are logged,
/// counted, and survived.
pub fn run_tcp(d: &TraindDaemon, listener: TcpListener) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cdcl-traind: cannot set listener nonblocking: {e}");
        return;
    }
    let stop = AtomicBool::new(false);
    let accepted = AtomicUsize::new(0);
    let workers = d.args.threads.max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (listener, stop, accepted) = (&listener, &stop, &accepted);
            s.spawn(move || loop {
                // ordering: flag — stop latch; pairs with the Release store below, and a late accept is harmless.
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        // ordering: flag — admission count gating the stop latch; AcqRel orders it with the latch store.
                        let n = accepted.fetch_add(1, Ordering::AcqRel) + 1;
                        if d.args.conns > 0 && n >= d.args.conns {
                            // ordering: flag — stop latch publication; pairs with the Acquire load above.
                            stop.store(true, Ordering::Release);
                        }
                        if d.args.conns > 0 && n > d.args.conns {
                            // A racing worker over-accepted past the
                            // connection budget; close it unserved.
                            continue;
                        }
                        handle_conn(d, conn);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        metrics::ACCEPT_ERRORS_TOTAL.inc();
                        eprintln!("cdcl-traind: accept failed (continuing): {e}");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            });
        }
    });
}

/// Builds the online trainer: warm-started from `--snapshot` when given,
/// otherwise fresh with zero tasks (the bootstrap path).
pub fn build_trainer(args: &TraindArgs) -> Result<CdclTrainer, String> {
    match &args.snapshot {
        Some(path) => CdclTrainer::resume_from(path)
            .map_err(|e| format!("cannot warm-start from {}: {e}", path.display())),
        None => {
            let mut config = CdclConfig::smoke();
            config.epochs = args.epochs;
            config.warmup_epochs = args.warmup_epochs;
            config.seed = args.seed;
            config.backbone.in_channels = args.in_channels;
            config.backbone.in_hw = args.in_hw;
            Ok(CdclTrainer::new(config))
        }
    }
}

/// The full `cdcl-traind` entry point: build the trainer, serve stdio or
/// TCP, then print the final status line.
pub fn run(args: TraindArgs) {
    cdcl_obs::set_enabled(true);
    if let Some(dir) = &args.ckpt_dir {
        std::env::set_var("CDCL_CKPT_DIR", dir);
    }
    if let Err(e) = std::fs::create_dir_all(&args.publish_dir) {
        eprintln!(
            "cdcl-traind: cannot create publish dir {}: {e}",
            args.publish_dir.display()
        );
        std::process::exit(2);
    }
    let trainer = match build_trainer(&args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cdcl-traind: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "cdcl-traind: model {:?} with {} tasks, publishing to {}, notifying {:?}",
        args.model,
        trainer.model().num_tasks(),
        args.publish_dir.display(),
        args.notify
    );
    let listen = args.listen.clone();
    let d = TraindDaemon::new(args, trainer);
    match &listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = BufReader::new(stdin.lock());
            let mut writer = BufWriter::new(stdout.lock());
            ingest_stream(&d, &mut reader, &mut writer).expect("traind stdin/stdout");
        }
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).unwrap_or_else(|e| panic!("cdcl-traind: bind {addr}: {e}"));
            eprintln!(
                "cdcl-traind: listening on {addr} ({} workers)",
                d.args.threads
            );
            run_tcp(&d, listener);
        }
    }
    telemetry::flush();
    eprintln!("cdcl-traind: final {}", d.status());
}
