//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *exact* API surface it consumes: seeded
//! [`rngs::SmallRng`], the [`Rng`] extension methods `random` /
//! `random_range`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — the same algorithm family real `rand 0.9` uses for
//! `SmallRng` on 64-bit targets.
//!
//! The stream is *not* bit-compatible with upstream `rand`; the workspace's
//! reproducibility contract is "same seed + same binary ⇒ same results",
//! which this crate preserves deterministically across platforms.

pub mod rngs;
pub mod seq;

/// Types that can be sampled uniformly from an RNG's raw output.
///
/// Mirrors the role of `rand::distr::StandardUniform` for the types the
/// workspace draws: floats in `[0, 1)` and full-range integers.
pub trait FromRng: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, width)` by rejection-free multiply-shift
/// (Lemire); bias is negligible for the widths used here, and the mapping
/// is deterministic, which is all the workspace requires.
fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_u64_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, width as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = f32::from_rng(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::from_rng(rng);
        self.start + (self.end - self.start) * u
    }
}

/// The random-number-generator interface.
///
/// Unlike upstream `rand` there is no `RngCore`/`Rng` split: every generator
/// implements [`Rng::next_u64`] and inherits the sampling helpers.
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (floats uniform in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}
