//! A compact version of the paper's Table IV ablation: toggle each CDCL
//! loss block off in turn — and swap the inter- intra-task cross-attention
//! for plain attention — then watch the accuracy move.
//!
//! ```text
//! cargo run --release -p cdcl --example ablation_study
//! ```

use cdcl::core::{run_stream, CdclConfig, CdclTrainer};
use cdcl::data::{mnist_usps, MnistUspsDirection, Scale};
use cdcl::nn::AttentionMode;

type Variant<'a> = (&'a str, Box<dyn Fn(&mut CdclConfig)>);

fn main() {
    let stream = mnist_usps(MnistUspsDirection::MnistToUsps, Scale::Standard);
    let variants: Vec<Variant> = vec![
        ("full CDCL", Box::new(|_: &mut CdclConfig| {})),
        (
            "without L_CIL (inter-task losses)",
            Box::new(|c: &mut CdclConfig| c.losses.cil = false),
        ),
        (
            "without L_TIL (intra-task losses)",
            Box::new(|c: &mut CdclConfig| c.losses.til = false),
        ),
        (
            "without L_R (rehearsal)",
            Box::new(|c: &mut CdclConfig| c.losses.rehearsal = false),
        ),
        (
            "simple attention (no task keys, no cross-attention)",
            Box::new(|c: &mut CdclConfig| {
                c.backbone.attention = AttentionMode::Simple;
                c.cross_attention = false;
            }),
        ),
    ];

    println!(
        "ablation on `{}` ({} tasks):\n",
        stream.name,
        stream.num_tasks()
    );
    println!(
        "{:38} {:>8} {:>8} {:>8}",
        "variant", "TIL ACC", "TIL FGT", "CIL ACC"
    );
    for (label, mutate) in variants {
        let mut config = CdclConfig::default();
        mutate(&mut config);
        let r = run_stream(&mut CdclTrainer::new(config), &stream);
        println!(
            "{label:38} {:7.1}% {:7.1}% {:7.1}%",
            r.til_acc_pct(),
            r.til_fgt_pct(),
            r.cil_acc_pct()
        );
    }
    println!("\n(the paper's finding: dropping the intra-task loss hurts most,\n then rehearsal; simple attention collapses CDCL toward DER-level)");
}
