//! GEMM kernel throughput: serial vs threaded, at the attention shapes.
//!
//! Benchmarks the three transpose-aware kernels of `cdcl_tensor::kernels`
//! on the shapes the model's attention layers actually multiply — scores
//! `Q·Kᵀ` (`nt`), `attn·V` (`nn`), and the `Aᵀ·g` backward (`tn`) — for
//! token counts `n ∈ {16, 64, 256}`, and writes `BENCH_kernels.json` at
//! the workspace root with ops/sec for 1 thread vs all available cores.
//!
//! On a single-core runner (the CI container this grew up in has
//! `nproc = 1`) serial and threaded throughput coincide; the JSON records
//! the core count so downstream tooling can tell "no speedup possible"
//! from "no speedup achieved".

use std::time::{Duration, Instant};

use cdcl_tensor::kernels;
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use serde::Serialize;

/// Batch and head dimension of the attention shapes (`[b, n, d]` tokens).
const BATCH: usize = 8;
const DIM: usize = 64;
/// Token counts swept by both the criterion benches and the JSON emitter.
const SIZES: [usize; 3] = [16, 64, 256];

fn fill(seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut z = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            z ^= z >> 27;
            ((z % 2000) as f32 - 1000.0) / 250.0
        })
        .collect()
}

/// One timed kernel invocation at token count `n`; returns the FMA count.
fn run_kernel(which: &str, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) -> usize {
    match which {
        // scores = Q·Kᵀ: [b,n,d] × [b,n,d] -> [b,n,n]
        "gemm_nt" => {
            kernels::gemm_nt_batched(out, a, b, BATCH, n, DIM, n);
            BATCH * n * DIM * n
        }
        // out = attn·V: [b,n,n] × [b,n,d] -> [b,n,d]
        "gemm_nn" => {
            kernels::gemm_nn_batched(out, a, b, BATCH, n, n, DIM);
            BATCH * n * n * DIM
        }
        // dV = attnᵀ·g: [b,n,n] × [b,n,d] -> [b,n,d]
        "gemm_tn" => {
            kernels::gemm_tn_batched(out, a, b, BATCH, n, n, DIM);
            BATCH * n * n * DIM
        }
        other => unreachable!("unknown kernel {other}"),
    }
}

/// Buffer lengths `(a, b, out)` for [`run_kernel`] at token count `n`.
fn buffer_lens(which: &str, n: usize) -> (usize, usize, usize) {
    match which {
        "gemm_nt" => (BATCH * n * DIM, BATCH * n * DIM, BATCH * n * n),
        "gemm_nn" | "gemm_tn" => (BATCH * n * n, BATCH * n * DIM, BATCH * n * DIM),
        other => unreachable!("unknown kernel {other}"),
    }
}

fn bench_kernels(c: &mut Criterion) {
    for which in ["gemm_nn", "gemm_nt", "gemm_tn"] {
        let mut group = c.benchmark_group(format!("kernels/{which}"));
        for &n in &SIZES {
            let (la, lb, lo) = buffer_lens(which, n);
            let a = fill(1, la);
            let b = fill(2, lb);
            let mut out = vec![0.0f32; lo];
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
                bench.iter(|| {
                    out.fill(0.0);
                    run_kernel(which, n, black_box(&a), black_box(&b), &mut out);
                    black_box(out[0])
                })
            });
        }
        group.finish();
    }
}

#[derive(Serialize)]
struct SizeResult {
    kernel: String,
    n: usize,
    batch: usize,
    d: usize,
    serial_ops_per_sec: f64,
    threaded_ops_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    cores: usize,
    threads_used: usize,
    note: String,
    results: Vec<SizeResult>,
}

/// Mean ops/sec over repeated timed runs at a fixed thread count.
fn ops_per_sec(which: &str, n: usize, threads: usize) -> f64 {
    kernels::set_num_threads(threads);
    let (la, lb, lo) = buffer_lens(which, n);
    let a = fill(1, la);
    let b = fill(2, lb);
    let mut out = vec![0.0f32; lo];
    // Warm up, then time for a fixed budget.
    let mut ops = 0usize;
    run_kernel(which, n, &a, &b, &mut out);
    let budget = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        out.fill(0.0);
        ops = run_kernel(which, n, black_box(&a), black_box(&b), &mut out);
        black_box(out[0]);
        iters += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    kernels::set_num_threads(0);
    (ops as f64 * iters as f64) / elapsed
}

fn emit_json() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();
    for which in ["gemm_nn", "gemm_nt", "gemm_tn"] {
        for &n in &SIZES {
            let serial = ops_per_sec(which, n, 1);
            let threaded = ops_per_sec(which, n, cores);
            results.push(SizeResult {
                kernel: which.to_string(),
                n,
                batch: BATCH,
                d: DIM,
                serial_ops_per_sec: serial,
                threaded_ops_per_sec: threaded,
                speedup: threaded / serial,
            });
        }
    }
    let report = Report {
        bench: "kernels".to_string(),
        cores,
        threads_used: cores,
        note: "ops = fused multiply-adds; speedup ~1.0 expected when cores = 1".to_string(),
        results,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    targets = bench_kernels
}

fn main() {
    benches();
    emit_json();
}
