//! Property tests for the rehearsal-memory rebalance (§IV-C).
//!
//! The quota rule under test: after `k` tasks, task `t` may keep
//! `⌊capacity/k⌋ + (t < capacity mod k)` records — remainder to the
//! earliest tasks — and quotas only shrink as `k` grows, so a task's stock
//! after any sequence is exactly `min(contributed, current quota)`.

use cdcl_core::{MemoryRecord, RehearsalMemory};
use cdcl_tensor::Tensor;
use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest};

fn record(task: usize, confidence: f32) -> MemoryRecord {
    MemoryRecord {
        task,
        x_source: Tensor::zeros(&[1, 2, 2]),
        x_target: Tensor::zeros(&[1, 2, 2]),
        label: 0,
        global_label: 0,
        cil_probs_source: vec![1.0],
        cil_probs_target: vec![1.0],
        confidence,
    }
}

/// The documented quota for task `t` once `tasks` tasks have finished.
fn quota(capacity: usize, tasks: usize, t: usize) -> usize {
    capacity / tasks + usize::from(t < capacity % tasks)
}

proptest! {
    /// After any task sequence: total ≤ capacity; every task that
    /// contributed keeps ≥ 1 record whenever `tasks ≤ capacity`; nothing is
    /// leaked when the capacity does not divide evenly (stock is *exactly*
    /// `min(contributed, quota)` — full-capacity usage follows).
    #[test]
    fn rebalance_invariants_hold_for_any_sequence(
        capacity in 0usize..40,
        counts in vec(0usize..30, 1..9),
    ) {
        let mut m = RehearsalMemory::new(capacity);
        for (task, &n) in counts.iter().enumerate() {
            let cands = (0..n).map(|i| record(task, i as f32)).collect();
            m.finish_task(task, cands);

            let tasks = task + 1;
            prop_assert!(m.len() <= capacity, "total {} > capacity {capacity}", m.len());
            let mut expected_total = 0;
            for (t, &contributed) in counts.iter().enumerate().take(tasks) {
                let stock = m.task_records(t).count();
                let expect = contributed.min(quota(capacity, tasks, t));
                prop_assert!(
                    stock == expect,
                    "task {t} stock {stock} != min(contributed {contributed}, quota {q}) at {tasks} tasks",
                    q = quota(capacity, tasks, t)
                );
                if tasks <= capacity && contributed > 0 {
                    prop_assert!(stock >= 1, "contributing task {} starved", t);
                }
                expected_total += expect;
            }
            prop_assert_eq!(m.len(), expected_total);
            // No leaked capacity: the quotas sum to exactly `capacity`, so
            // when every task can fill its quota the memory is full — even
            // when `capacity % tasks != 0` (the old rule leaked the
            // remainder).
            if counts.iter().take(tasks).all(|&n| n >= quota(capacity, tasks, 0)) {
                prop_assert_eq!(m.len(), capacity);
            }
        }
    }
}
