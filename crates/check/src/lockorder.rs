//! Static lock-order analysis (DESIGN.md §14).
//!
//! Three questions about every function in the workspace, answered from the
//! token stream alone:
//!
//! 1. **Which locks does it acquire, and with what held?** An acquisition
//!    is either an *empty-paren* guard method — `x.lock()` / `x.read()` /
//!    `x.write()` (the empty parens disambiguate `RwLock::read` from
//!    `io::Read::read`, which takes a buffer) — or a call to one of the
//!    workspace's poison-tolerant wrapper fns ([`WRAPPER_FNS`]), whose
//!    `&'static str` name argument at the call site *is* the canonical
//!    lock label shared with the runtime witness.
//! 2. **How long is the guard held?** A `let`-bound guard lives until its
//!    enclosing block closes or an explicit `drop(guard)`; a temporary
//!    guard lives to the end of its statement (the `;` at acquisition
//!    depth), or through the brace tree that starts first — which keeps a
//!    `match m.lock() { … }` scrutinee or an
//!    `if let Some(v) = lock(…).pop() { … }` temporary alive through the
//!    body, exactly as Rust does.
//! 3. **What do calls made under a guard acquire, transitively?** A call
//!    edge is followed only when exactly one workspace `fn` bears the
//!    callee's name and the name is not on [`CALL_STOPLIST`] (ubiquitous
//!    trait-method names whose resolution by bare name would be a guess).
//!    Acquire-sets propagate to a fixpoint; held-lock × callee-acquire
//!    products become lock-order edges.
//!
//! The cross-crate edge graph then yields the two failure classes:
//! deadlock *cycles* (any strongly-connected acquisition order, including
//! self-edges — re-entering a non-reentrant `Mutex`), and *guards held
//! across blocking calls* ([`BLOCKING_CALLS`]) inside the latency-critical
//! paths ([`BLOCKING_SCOPES`]: the serve plane and the buffer pool), where
//! the multi-tenant contract is "load off-lock, swap atomically".
//!
//! Like the rest of the linter this is an approximation — closures are
//! treated as executing inline, branch-local guards look held through the
//! whole statement tree — chosen so the *static graph over-approximates
//! the runtime graph*: every edge the witness can observe must exist here.

use crate::lexer::{lex, test_line_regions, Tok, TokKind};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Guard methods that take no arguments: `Mutex::lock`, `RwLock::read`,
/// `RwLock::write`.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Workspace wrapper fns that acquire and return a guard. Their bodies are
/// skipped (the interior `m.lock()` would double-count) and their call
/// sites are acquisitions, labeled by the first string-literal argument.
pub const WRAPPER_FNS: [&str; 9] = [
    "lock",
    "read_lock",
    "write_lock",
    "lock_batches",
    "lock_entries",
    "lock_family",
    "lock_first_serve",
    "lock_sink",
    "lock_traind",
];

/// Receivers whose `.lock()` is not a contended workspace lock: stdio
/// handles (re-entrant per-thread buffers, held across I/O by design).
const EXEMPT_LABELS: [&str; 3] = ["stdin", "stdout", "stderr"];

/// Calls that can block on I/O, time, or another thread. `read`/`write`
/// appear here too: with *arguments* they are `io::Read`/`io::Write`
/// (the empty-paren guard form is consumed by acquisition matching first).
pub const BLOCKING_CALLS: [&str; 15] = [
    "accept",
    "bind",
    "connect",
    "flush",
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "resume_from",
    "sleep",
    "write",
    "write_all",
    "writeln",
];

/// Path prefixes where a guard held across a blocking call is an error:
/// the serve request plane, the traind ingest/publish plane, and the
/// buffer pool's free-list mutex.
pub const BLOCKING_SCOPES: [&str; 3] = [
    "crates/bench/src/serve/",
    "crates/bench/src/traind/",
    "crates/tensor/src/pool.rs",
];

/// Callee names never resolved by bare name: trait methods and collection
/// verbs so common that a single-definition match would still usually be
/// the wrong target (e.g. `Iterator::find` vs `SnapshotRegistry::find`).
const CALL_STOPLIST: [&str; 34] = [
    "add",
    "clear",
    "clone",
    "cmp",
    "collect",
    "flush",
    "compare_exchange",
    "compare_exchange_weak",
    "default",
    "deref",
    "deref_mut",
    "drop",
    "eq",
    "fetch_add",
    "fetch_sub",
    "find",
    "fmt",
    "from",
    "get",
    "hash",
    "inc",
    "insert",
    "into",
    "is_empty",
    "iter",
    "len",
    "load",
    "map",
    "new",
    "next",
    "observe",
    "push",
    "set",
    "store",
];

/// Rust keywords that look like `ident (` at a call site but are not calls.
const KEYWORDS: [&str; 14] = [
    "box", "break", "continue", "else", "for", "if", "in", "loop", "match", "move", "return",
    "unsafe", "while", "yield",
];

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Canonical lock label (string-literal argument of a wrapper call,
    /// or the receiver's final identifier for a direct guard method).
    pub label: String,
    pub line: usize,
    /// Labels already held when this one was acquired.
    pub held: Vec<String>,
}

/// One call made inside a function body, with the guards held around it.
#[derive(Debug, Clone)]
pub struct HeldCall {
    pub callee: String,
    pub line: usize,
    pub held: Vec<String>,
    /// `name!(…)` macro invocation — participates in the blocking check
    /// but never in name resolution.
    pub is_macro: bool,
}

/// Per-function lock facts extracted from one file.
#[derive(Debug, Clone)]
pub struct FnLockInfo {
    pub name: String,
    pub file: String,
    pub line: usize,
    pub acquisitions: Vec<Acquisition>,
    pub calls: Vec<HeldCall>,
}

/// One directed lock-order edge with provenance: `from` was held while
/// `to` was acquired (directly, or transitively through `via`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    /// Callee the acquisition was reached through (empty for direct).
    pub via: String,
}

/// The whole-workspace report: per-fn facts, the deduplicated edge graph,
/// and the findings from the two failure checks.
#[derive(Debug, Default)]
pub struct LockReport {
    pub fns: Vec<FnLockInfo>,
    pub edges: Vec<LockEdge>,
    pub findings: Vec<Finding>,
}

impl LockReport {
    /// Whether the static graph contains `from -> to` (the witness's
    /// validation question).
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }
}

// ----------------------------------------------------------------------
// Per-function extraction
// ----------------------------------------------------------------------

/// A live guard while walking a function body.
struct Guard {
    label: String,
    /// `let`-binding name, when the statement was `let [mut] name = …`.
    bind: Option<String>,
    /// Brace depth (relative to the fn body) at acquisition.
    depth: usize,
    /// Temporary (not `let`-bound): released at the `;` of its statement.
    temp: bool,
}

/// Extracts [`FnLockInfo`] for every non-test function in `source`.
/// Wrapper fns themselves are skipped — their interior `m.lock()` is
/// represented by the labels at their call sites.
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<FnLockInfo> {
    let all = lex(source);
    let regions = test_line_regions(&all);
    let t: Vec<&Tok> = all.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].is_ident("fn") && i + 1 < t.len() && t[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = t[i + 1].text.clone();
        let fn_line = t[i].line;
        // Find the body: the first `{` before a `;` (a `;` first means a
        // trait-method declaration with no body).
        let mut j = i + 2;
        let mut body_start = None;
        while j < t.len() {
            if t[j].is_punct(';') {
                break;
            }
            if t[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body_start else {
            i = j.max(i + 1);
            continue;
        };
        // Matching close brace.
        let mut depth = 0usize;
        let mut k = open;
        while k < t.len() {
            if t[k].is_punct('{') {
                depth += 1;
            } else if t[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let in_test = crate::lexer::line_in_regions(&regions, fn_line);
        if !in_test && !WRAPPER_FNS.contains(&name.as_str()) {
            let (acquisitions, calls) = walk_body(&t[open..=k.min(t.len() - 1)]);
            // Record even lock-free fns: the by-name census in
            // [`build_report`] must see every definition, or a common
            // method name (`shape`) with one lock-touching and one plain
            // definition would look unique and mis-resolve.
            out.push(FnLockInfo {
                name,
                file: rel_path.to_string(),
                line: fn_line,
                acquisitions,
                calls,
            });
        }
        i = k.max(i + 1);
    }
    out
}

/// Walks one brace-delimited body, tracking guard liveness.
fn walk_body(t: &[&Tok]) -> (Vec<Acquisition>, Vec<HeldCall>) {
    let mut acquisitions = Vec::new();
    let mut calls = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < t.len() {
        let tok = t[i];
        if tok.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            // Any guard acquired inside the block that just closed dies,
            // temporaries included (their statement tree cannot extend
            // past the enclosing block).
            guards.retain(|g| g.depth <= depth);
            i += 1;
            continue;
        }
        if tok.is_punct(';') {
            // End of statement at this depth: temporaries acquired at
            // this depth die with their statement.
            guards.retain(|g| !(g.temp && g.depth == depth));
            i += 1;
            continue;
        }
        // Explicit `drop(guard)` releases a let-bound guard early.
        if tok.is_ident("drop")
            && i + 3 < t.len()
            && t[i + 1].is_punct('(')
            && t[i + 2].kind == TokKind::Ident
            && t[i + 3].is_punct(')')
        {
            let name = &t[i + 2].text;
            guards.retain(|g| g.bind.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }
        // Direct guard method: `recv.lock()` / `recv.read()` / `recv.write()`
        // with EMPTY parens.
        if tok.is_punct('.')
            && i + 3 < t.len()
            && t[i + 1].kind == TokKind::Ident
            && LOCK_METHODS.contains(&t[i + 1].text.as_str())
            && t[i + 2].is_punct('(')
            && t[i + 3].is_punct(')')
        {
            if let Some(label) = receiver_label(t, i) {
                if !EXEMPT_LABELS.contains(&label.as_str()) {
                    acquire(&mut acquisitions, &mut guards, label, t, i, depth);
                }
            }
            i += 4;
            continue;
        }
        // Wrapper call: `read_lock(&self.models, "registry.models")`.
        if tok.kind == TokKind::Ident
            && WRAPPER_FNS.contains(&tok.text.as_str())
            && i + 1 < t.len()
            && t[i + 1].is_punct('(')
            && (i == 0 || !(t[i - 1].is_punct('.') || t[i - 1].is_ident("fn")))
        {
            let label = wrapper_label(t, i);
            if !EXEMPT_LABELS.contains(&label.as_str()) {
                acquire(&mut acquisitions, &mut guards, label, t, i, depth);
            }
            i += 2;
            continue;
        }
        // Plain or method call (`foo(…)` / `x.foo(…)`), and macro
        // invocations (`writeln!(…)`).
        if tok.kind == TokKind::Ident && i + 1 < t.len() {
            let is_macro = t[i + 1].is_punct('!')
                && i + 2 < t.len()
                && (t[i + 2].is_punct('(') || t[i + 2].is_punct('[') || t[i + 2].is_punct('{'));
            let is_call = t[i + 1].is_punct('(');
            let prev_fn = i > 0 && t[i - 1].is_ident("fn");
            if (is_macro || is_call) && !prev_fn && !KEYWORDS.contains(&tok.text.as_str()) {
                let held: Vec<String> = guards.iter().map(|g| g.label.clone()).collect();
                if !held.is_empty() || !is_macro {
                    calls.push(HeldCall {
                        callee: tok.text.clone(),
                        line: tok.line,
                        held,
                        is_macro,
                    });
                }
            }
        }
        i += 1;
    }
    (acquisitions, calls)
}

/// Records an acquisition at token index `i`: emits the held-set snapshot
/// and registers the new guard with its liveness class.
fn acquire(
    acquisitions: &mut Vec<Acquisition>,
    guards: &mut Vec<Guard>,
    label: String,
    t: &[&Tok],
    i: usize,
    depth: usize,
) {
    let held: Vec<String> = guards.iter().map(|g| g.label.clone()).collect();
    acquisitions.push(Acquisition {
        label: label.clone(),
        line: t[i].line,
        held,
    });
    let bind = let_binding(t, i, depth);
    guards.push(Guard {
        label,
        temp: bind.is_none(),
        bind,
        depth,
    });
}

/// The receiver label of a direct guard method at the `.` token `i`:
/// the identifier closest to the dot, skipping one index group —
/// `self.classes[class].lock()` → `classes`, `SINK.lock()` → `SINK`.
fn receiver_label(t: &[&Tok], dot: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if t[j].is_punct(']') {
            // Skip the index expression back to its `[`.
            let mut d = 0usize;
            while j > 0 {
                if t[j].is_punct(']') {
                    d += 1;
                } else if t[j].is_punct('[') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            continue;
        }
        if t[j].kind == TokKind::Ident {
            if t[j].text == "self" {
                return None;
            }
            return Some(t[j].text.clone());
        }
        return None;
    }
}

/// The lock label of a wrapper call at ident token `i`: the first
/// string-literal argument (the canonical name, shared with the runtime
/// witness), else the last non-`self` identifier among the arguments,
/// else the wrapper's own name (`lock_sink()` → `lock_sink`).
fn wrapper_label(t: &[&Tok], i: usize) -> String {
    let mut j = i + 1;
    let mut d = 0usize;
    let mut last_ident = None;
    while j < t.len() {
        if t[j].is_punct('(') {
            d += 1;
        } else if t[j].is_punct(')') {
            d -= 1;
            if d == 0 {
                break;
            }
        } else if t[j].kind == TokKind::StrLit {
            let text = &t[j].text;
            let inner = text.trim_start_matches('b').trim_matches('"');
            return inner.to_string();
        } else if t[j].kind == TokKind::Ident && t[j].text != "self" && t[j].text != "mut" {
            last_ident = Some(t[j].text.clone());
        }
        j += 1;
    }
    last_ident.unwrap_or_else(|| t[i].text.clone())
}

/// When the statement containing token `i` is `let [mut] name = …` at the
/// current depth, returns the binding name (the guard then lives to end of
/// block); otherwise `None` (a temporary).
fn let_binding(t: &[&Tok], i: usize, _depth: usize) -> Option<String> {
    // Scan back to the start of the statement: the token after the
    // previous `;`, `{`, or `}`.
    let mut j = i;
    while j > 0 {
        let p = t[j - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !t.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if t.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = t.get(k)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    if !t.get(k + 1)?.is_punct('=') {
        // `let Some(g) = …` and friends: treat as a temporary (the
        // conservative direction — it lives through the statement tree).
        return None;
    }
    Some(name.text.clone())
}

// ----------------------------------------------------------------------
// Whole-workspace graph
// ----------------------------------------------------------------------

/// Builds the cross-crate lock-order graph from per-fn facts and runs the
/// cycle and guard-across-blocking checks.
pub fn build_report(fns: Vec<FnLockInfo>) -> LockReport {
    // Name → fn indices, for single-definition resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
    }
    let resolve = |callee: &str| -> Option<usize> {
        if CALL_STOPLIST.contains(&callee) {
            return None;
        }
        match by_name.get(callee) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    // Transitive acquire-sets, to a fixpoint.
    let mut acq: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.acquisitions.iter().map(|a| a.label.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for (idx, f) in fns.iter().enumerate() {
            for c in &f.calls {
                if c.is_macro {
                    continue;
                }
                let Some(callee) = resolve(&c.callee) else {
                    continue;
                };
                if callee == idx {
                    continue;
                }
                let add: Vec<String> = acq[callee].difference(&acq[idx]).cloned().collect();
                if !add.is_empty() {
                    acq[idx].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: direct (held at acquisition) + interprocedural (held at a
    // resolvable call × the callee's transitive acquires).
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    for f in &fns {
        for a in &f.acquisitions {
            // `h == a.label` is a self-edge: the same lock acquired while
            // already held (std Mutex/RwLock are not re-entrant).
            for h in &a.held {
                edges.insert(LockEdge {
                    from: h.clone(),
                    to: a.label.clone(),
                    file: f.file.clone(),
                    line: a.line,
                    via: String::new(),
                });
            }
        }
        for c in &f.calls {
            if c.held.is_empty() || c.is_macro {
                continue;
            }
            let Some(callee) = resolve(&c.callee) else {
                continue;
            };
            for to in &acq[callee] {
                for h in &c.held {
                    edges.insert(LockEdge {
                        from: h.clone(),
                        to: to.clone(),
                        file: f.file.clone(),
                        line: c.line,
                        via: c.callee.clone(),
                    });
                }
            }
        }
    }

    let mut findings = cycle_findings(&edges);
    findings.extend(blocking_findings(&fns));
    LockReport {
        fns,
        edges: edges.into_iter().collect(),
        findings,
    }
}

/// Lexes and analyzes a set of (rel_path, source) pairs.
pub fn analyze_sources(sources: &[(String, String)]) -> LockReport {
    let mut fns = Vec::new();
    for (rel, src) in sources {
        fns.extend(analyze_source(rel, src));
    }
    build_report(fns)
}

/// Walks `crates/*/src` under `root` and analyzes the whole workspace.
pub fn analyze_workspace(root: &std::path::Path) -> LockReport {
    let mut sources = Vec::new();
    for path in crate::collect_rs_files(root) {
        let rel = crate::rel_path(root, &path);
        if let Ok(src) = std::fs::read_to_string(&path) {
            sources.push((rel, src));
        }
    }
    analyze_sources(&sources)
}

/// DFS cycle detection over the label graph; one finding per back edge.
fn cycle_findings(edges: &BTreeSet<LockEdge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut findings = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while let Some(&node) = path.last() {
            let idx = *iters.last().unwrap_or(&0);
            let next = adj.get(node).and_then(|v| v.get(idx));
            match next {
                Some(e) => {
                    if let Some(last) = iters.last_mut() {
                        *last += 1;
                    }
                    if let Some(pos) = path.iter().position(|&n| n == e.to) {
                        let mut cyc: Vec<&str> = path[pos..].to_vec();
                        cyc.push(e.to.as_str());
                        findings.push(Finding {
                            file: e.file.clone(),
                            line: e.line,
                            rule: "lock-order",
                            needle: cyc.join(" -> "),
                            excerpt: format!(
                                "lock-order cycle (potential deadlock); closing edge `{} -> {}`{}",
                                e.from,
                                e.to,
                                if e.via.is_empty() {
                                    String::new()
                                } else {
                                    format!(" via `{}()`", e.via)
                                }
                            ),
                        });
                    } else if !done.contains(e.to.as_str()) {
                        path.push(e.to.as_str());
                        iters.push(0);
                    }
                }
                None => {
                    done.insert(node);
                    path.pop();
                    iters.pop();
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.needle).cmp(&(&b.file, b.line, &b.needle)));
    findings.dedup_by(|a, b| a.needle == b.needle && a.file == b.file);
    findings
}

/// Guards held across blocking calls inside [`BLOCKING_SCOPES`].
fn blocking_findings(fns: &[FnLockInfo]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in fns {
        if !BLOCKING_SCOPES.iter().any(|s| f.file.starts_with(s)) {
            continue;
        }
        for c in &f.calls {
            if c.held.is_empty() || !BLOCKING_CALLS.contains(&c.callee.as_str()) {
                continue;
            }
            findings.push(Finding {
                file: f.file.clone(),
                line: c.line,
                rule: "guard-blocking",
                needle: format!("{}() under {}", c.callee, c.held.join("+")),
                excerpt: format!(
                    "guard(s) [{}] held across blocking call `{}` in `{}` — \
                     release the lock first (load off-lock, swap atomically)",
                    c.held.join(", "),
                    c.callee,
                    f.name
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> LockReport {
        analyze_sources(&[("crates/x/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn direct_nesting_produces_edge() {
        let src = "
            fn ab(s: &S) {
                let ga = s.a.lock();
                let gb = s.b.lock();
            }
        ";
        let r = report(src);
        assert!(r.has_edge("a", "b"), "{:?}", r.edges);
        assert!(!r.has_edge("b", "a"));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn opposite_orders_cycle() {
        let src = "
            fn ab(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
            fn ba(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }
        ";
        let r = report(src);
        let cycles: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "lock-order")
            .collect();
        assert!(!cycles.is_empty(), "{:?}", r.findings);
        assert!(cycles[0].needle.contains("a") && cycles[0].needle.contains("b"));
    }

    #[test]
    fn guard_released_by_scope_drop_and_semicolon() {
        // Block scoping: a dies with its block, so b is not nested under it.
        let scoped = "
            fn f(s: &S) {
                { let ga = s.a.lock(); }
                let gb = s.b.lock();
            }
        ";
        assert!(report(scoped).edges.is_empty());
        // Temporary: dies at its `;`.
        let temp = "
            fn f(s: &S) {
                s.a.lock().push(1);
                let gb = s.b.lock();
            }
        ";
        assert!(report(temp).edges.is_empty());
        // Explicit drop.
        let dropped = "
            fn f(s: &S) {
                let ga = s.a.lock();
                drop(ga);
                let gb = s.b.lock();
            }
        ";
        assert!(report(dropped).edges.is_empty());
    }

    #[test]
    fn scrutinee_temporary_lives_through_the_body() {
        // `if let` over a guard temporary: the guard is live inside the
        // body (Rust keeps scrutinee temporaries alive), so the inner
        // acquisition is a real edge.
        let src = "
            fn f(s: &S) {
                if let Some(v) = s.a.lock().pop() {
                    let gb = s.b.lock();
                }
            }
        ";
        assert!(report(src).has_edge("a", "b"));
    }

    #[test]
    fn wrapper_call_sites_use_string_label() {
        let src = r#"
            fn read_lock<T>(l: &RwLock<T>, name: &'static str) -> G<'_, T> { l.read().ok() }
            fn f(s: &S) {
                let models = read_lock(&s.models, "registry.models");
                let cur = read_lock(&s.current, "registry.current");
            }
        "#;
        let r = report(src);
        assert!(
            r.has_edge("registry.models", "registry.current"),
            "{:?}",
            r.edges
        );
        // The wrapper body's own `l.read()` is not double-counted.
        assert!(r.fns.iter().all(|f| f.name != "read_lock"));
    }

    #[test]
    fn interprocedural_edge_through_unique_callee() {
        let src = r#"
            fn leaf(s: &S) -> u32 { let g = s.inner.lock(); 0 }
            fn top(s: &S) {
                let gm = read_lock(&s.models, "registry.models");
                let v = leaf(s);
            }
        "#;
        let r = report(src);
        assert!(r.has_edge("registry.models", "inner"), "{:?}", r.edges);
    }

    #[test]
    fn stoplisted_and_ambiguous_callees_do_not_resolve() {
        let src = r#"
            fn clone(s: &S) { let g = s.inner.lock(); }
            fn dup(s: &S) { let g = s.other.lock(); }
            fn dup(s: &T) { let g = s.other2.lock(); }
            fn top(s: &S) {
                let gm = read_lock(&s.models, "registry.models");
                let a = s.clone();
                let b = dup(s);
            }
        "#;
        let r = report(src);
        assert!(!r.has_edge("registry.models", "inner"));
        assert!(!r.has_edge("registry.models", "other"));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let src = "
            fn f(s: &S) {
                let g1 = s.a.lock();
                let g2 = s.a.lock();
            }
        ";
        let r = report(src);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "lock-order" && f.needle.contains("a -> a")));
    }

    #[test]
    fn blocking_call_under_guard_flagged_only_in_scope() {
        let src = "
            fn f(m: &M, l: &L) {
                let g = m.lock();
                let c = l.accept();
            }
        ";
        let in_scope =
            analyze_sources(&[("crates/bench/src/serve/x.rs".to_string(), src.to_string())]);
        assert!(
            in_scope.findings.iter().any(|f| f.rule == "guard-blocking"),
            "{:?}",
            in_scope.findings
        );
        let out_of_scope =
            analyze_sources(&[("crates/core/src/x.rs".to_string(), src.to_string())]);
        assert!(out_of_scope
            .findings
            .iter()
            .all(|f| f.rule != "guard-blocking"));
    }

    #[test]
    fn stdio_and_io_with_args_are_not_acquisitions() {
        let src = "
            fn f() {
                let stdin = io::stdin();
                let mut reader = BufReader::new(stdin.lock());
                let n = reader.read(&mut buf);
            }
        ";
        let r = analyze_sources(&[("crates/bench/src/serve/x.rs".to_string(), src.to_string())]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn test_functions_are_excluded() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn f(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }
                fn g(s: &S) { let b = s.b.lock(); let a = s.a.lock(); }
            }
        ";
        assert!(report(src).findings.is_empty());
    }
}
