//! Size-classed `f32` buffer pool: the workspace's memory plane.
//!
//! Every tensor in the workspace stores its elements in a [`PooledBuf`] —
//! an RAII handle over a plain `Vec<f32>` that, on drop, returns the
//! storage to a process-wide free list instead of the system allocator.
//! Because the CDCL workload's steady-state shapes are fixed after task
//! setup (frozen `(K_i, b_i)` pairs, fixed-capacity rehearsal memory),
//! every training step and serve request after the first re-uses the same
//! small set of size classes and the allocator drops out of the hot path.
//!
//! Design (DESIGN.md §12):
//!
//! * **Size classes** are powers of two from [`MIN_CLASS`] elements up to
//!   [`MAX_CLASS`]; a request of `n` elements is served from the smallest
//!   class `>= n` and the returned buffer is truncated to exactly `n`.
//!   Requests above [`MAX_CLASS`] bypass the free lists (plain `Vec`).
//! * **Recycling is capacity-based**: an adopted or returned `Vec` is filed
//!   under the *largest* class whose size fits within its capacity, so a
//!   buffer popped from class `c` always has capacity `>= size(c) >= n`.
//! * **No `unsafe`**: recycled buffers keep their previous (fully
//!   initialised) length. [`take_uninit`] truncates when the stored length
//!   covers the request and zero-extends only the missing tail, so in
//!   steady state it is a pointer-width bookkeeping op — no fill, no
//!   `MaybeUninit`. Callers of [`take_uninit`] must overwrite every
//!   element; [`take_zeroed`] is for accumulation targets (GEMM outputs,
//!   `col2im`) where zero *is* the semantic initial value.
//! * **Determinism**: the pool only decides *where* a buffer lives, never
//!   what it holds when the caller first reads it, so results are bitwise
//!   identical with the pool on or off (`CDCL_POOL=0` kill switch, plus a
//!   runtime toggle so tests can A/B inside one process).
//! * **Bounded residency**: each free list is capped under a per-class
//!   byte budget (deep lists for cheap small classes, shallow for big
//!   ones); overflow buffers fall through to the allocator and
//!   `cdcl_pool_bytes_resident` tracks what the lists hold.
//!
//! The free lists are per-class `Mutex<Vec<Vec<f32>>>`. A pool hit is one
//! short critical section (pop) — noise next to the kernels that consume
//! the buffer, and uncontended in the single-threaded step loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Smallest pooled class, in elements (256 B). Requests below this still
/// pool (they round up), keeping the hit-rate accounting uniform.
pub const MIN_CLASS: usize = 64;
/// Largest pooled class, in elements (64 MiB). Larger requests bypass the
/// free lists entirely.
pub const MAX_CLASS: usize = 1 << 24;
const NUM_CLASSES: usize = (MAX_CLASS / MIN_CLASS).trailing_zeros() as usize + 1;
/// Per-class residency budget in bytes. The autograd tape keeps every
/// intermediate of a step alive at once, so small classes need *deep* free
/// lists (hundreds of scalars/rows live simultaneously); big classes would
/// pin real memory, so their lists stay shallow. A byte budget gives both:
/// `cap(class) = clamp(BUDGET / class_bytes, MIN, MAX)`.
const CLASS_CAP_BYTES: usize = 8 << 20;
const CLASS_CAP_MAX: usize = 1024;
const CLASS_CAP_MIN: usize = 4;

/// Free-list depth cap for class `idx` under the byte budget.
fn class_cap(idx: usize) -> usize {
    (CLASS_CAP_BYTES / (class_size(idx) * 4)).clamp(CLASS_CAP_MIN, CLASS_CAP_MAX)
}

/// Index of the smallest class that can serve `n` elements, or `None` when
/// `n` exceeds [`MAX_CLASS`].
fn class_for_request(n: usize) -> Option<usize> {
    if n > MAX_CLASS {
        return None;
    }
    let rounded = n.next_power_of_two().max(MIN_CLASS);
    Some((rounded / MIN_CLASS).trailing_zeros() as usize)
}

/// Index of the largest class whose size fits in `capacity`, or `None`
/// when the capacity is below [`MIN_CLASS`] (not worth recycling).
fn class_for_capacity(capacity: usize) -> Option<usize> {
    if capacity < MIN_CLASS {
        return None;
    }
    let c = capacity.min(MAX_CLASS);
    // Largest power of two <= c, relative to MIN_CLASS.
    let floor = usize::BITS - 1 - c.leading_zeros();
    let min_bits = MIN_CLASS.trailing_zeros();
    Some((floor - min_bits) as usize)
}

/// Element count of class `idx`.
fn class_size(idx: usize) -> usize {
    MIN_CLASS << idx
}

// ---------------------------------------------------------------------
// Pool instance (testable) + the process-wide instance
// ---------------------------------------------------------------------

/// A size-classed free-list pool. The workspace uses one process-wide
/// instance ([`global`]); tests construct their own for precise stats.
pub struct BufferPool {
    classes: Vec<Mutex<Vec<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    alloc_bytes: AtomicU64,
    resident_bytes: AtomicU64,
}

/// A point-in-time reading of a pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a free list (no heap allocation).
    pub hits: u64,
    /// Requests that fell through to the allocator (fresh `Vec`).
    pub misses: u64,
    /// Total bytes handed out by the heap through pool paths, including
    /// the `CDCL_POOL=0` fallback and over-`MAX_CLASS` bypasses.
    pub alloc_bytes: u64,
    /// Bytes currently parked in free lists (capacity, not length).
    pub resident_bytes: u64,
}

impl PoolStats {
    /// Counter increments since `earlier` (saturating, so benchmark resets
    /// in between cannot underflow). `resident_bytes` is a gauge and is
    /// carried over as-is.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            resident_bytes: self.resident_bytes,
        }
    }

    /// Fraction of requests served from the free lists (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Mutex poisoning cannot corrupt a free list (the guarded `Vec<Vec<f32>>`
/// has no invariants a panic can break mid-way), so we always recover.
fn lock<'m, T>(
    m: &'m Mutex<T>,
    name: &'static str,
) -> cdcl_obs::lockhook::Witnessed<std::sync::MutexGuard<'m, T>> {
    let guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    cdcl_obs::lockhook::witness_acquired(guard, name)
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool with all size classes present and no residency.
    pub fn new() -> Self {
        let mut classes = Vec::with_capacity(NUM_CLASSES);
        for _ in 0..NUM_CLASSES {
            classes.push(Mutex::new(Vec::new()));
        }
        BufferPool {
            classes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// A buffer of exactly `n` elements with **unspecified** (but
    /// initialised) contents. The caller must overwrite every element
    /// before reading — this is what makes pool on/off bitwise identical.
    pub fn take_uninit(&self, n: usize) -> Vec<f32> {
        let Some(class) = class_for_request(n) else {
            // Over-MAX_CLASS bypass: plain allocation, counted but unpooled.
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.alloc_bytes
                .fetch_add((n * 4) as u64, Ordering::Relaxed);
            return vec![0.0; n];
        };
        if let Some(mut v) = lock(&self.classes[class], "pool.classes").pop() {
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.resident_bytes
                .fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
            if v.len() >= n {
                v.truncate(n);
            } else {
                v.resize(n, 0.0);
            }
            return v;
        }
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if std::env::var("CDCL_POOL_DEBUG").is_ok() {
            eprintln!("POOLMISS uninit n={n} class={class}");
        }
        let size = class_size(class);
        self.alloc_bytes
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            .fetch_add((size * 4) as u64, Ordering::Relaxed);
        let mut v = vec![0.0; size];
        v.truncate(n);
        v
    }

    /// A buffer of exactly `n` zeros. Use for accumulation targets where
    /// zero is the semantic initial value; the fill is skipped when the
    /// buffer is freshly allocated (already zero).
    pub fn take_zeroed(&self, n: usize) -> Vec<f32> {
        let Some(class) = class_for_request(n) else {
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.alloc_bytes
                .fetch_add((n * 4) as u64, Ordering::Relaxed);
            return vec![0.0; n];
        };
        if let Some(mut v) = lock(&self.classes[class], "pool.classes").pop() {
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.resident_bytes
                .fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
            v.clear();
            v.resize(n, 0.0);
            return v;
        }
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if std::env::var("CDCL_POOL_DEBUG").is_ok() {
            eprintln!("POOLMISS zeroed n={n} class={class}");
        }
        let size = class_size(class);
        self.alloc_bytes
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            .fetch_add((size * 4) as u64, Ordering::Relaxed);
        let mut v = vec![0.0; size];
        v.truncate(n);
        v
    }

    /// Returns a buffer to its free list. Buffers too small or too large
    /// to recycle, and overflow beyond the class cap, drop normally.
    pub fn give(&self, v: Vec<f32>) {
        let Some(class) = class_for_capacity(v.capacity()) else {
            return;
        };
        let cap = class_cap(class);
        let mut list = lock(&self.classes[class], "pool.classes");
        if list.len() < cap {
            self.resident_bytes
                // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
                .fetch_add((v.capacity() * 4) as u64, Ordering::Relaxed);
            list.push(v);
        }
    }

    /// Reads all counters (relaxed; concurrent takes may or may not be
    /// included, which is fine for telemetry).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss/alloc counters (benchmark hygiene). Residency
    /// is a live gauge and is left untouched.
    pub fn reset_stats(&self) {
        // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.alloc_bytes.store(0, Ordering::Relaxed);
    }

    /// Drops every parked buffer, returning residency to zero.
    pub fn clear(&self) {
        for class in &self.classes {
            let mut list = lock(class, "pool.classes");
            for v in list.drain(..) {
                self.resident_bytes
                    // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
                    .fetch_sub((v.capacity() * 4) as u64, Ordering::Relaxed);
            }
        }
    }
}

/// The process-wide pool behind every [`PooledBuf`].
pub fn global() -> &'static BufferPool {
    static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
    GLOBAL.get_or_init(BufferPool::new)
}

// ---------------------------------------------------------------------
// Enable switch
// ---------------------------------------------------------------------

/// `0` = disabled (plain `Vec` allocation per buffer), anything else (or
/// unset) = enabled.
pub const POOL_ENV: &str = "CDCL_POOL";

static ENABLED_STATE: AtomicU64 = AtomicU64::new(0); // 0 = unread, 1 = off, 2 = on

fn enabled_from_env() -> u64 {
    match std::env::var(POOL_ENV) {
        Ok(v) if v.trim() == "0" => 1,
        _ => 2,
    }
}

/// Whether buffers are recycled through the global pool. Reads `CDCL_POOL`
/// once on first use; [`set_enabled`] overrides at runtime.
pub fn enabled() -> bool {
    // ordering: lazy-init — idempotent env resolution; any racer stores the same value.
    let state = ENABLED_STATE.load(Ordering::Relaxed);
    if state != 0 {
        return state == 2;
    }
    let resolved = enabled_from_env();
    // A concurrent first call resolves to the same value, so a race is fine.
    // ordering: lazy-init — idempotent env resolution; any racer stores the same value.
    ENABLED_STATE.store(resolved, Ordering::Relaxed);
    resolved == 2
}

/// Runtime override of the `CDCL_POOL` switch, so tests can A/B pooled vs
/// plain allocation inside one process. Buffers taken while enabled still
/// recycle on drop after disabling (and vice versa never recycle), which
/// affects only *where* memory lives — never tensor contents.
pub fn set_enabled(on: bool) {
    // ordering: flag — advisory on/off switch; no data is published through it.
    ENABLED_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// PooledBuf: the RAII handle tensors store
// ---------------------------------------------------------------------

/// An owned `f32` buffer that returns its storage to the global pool when
/// dropped (if pooling was enabled when it was taken). This is the storage
/// type inside [`crate::Tensor`]; it derefs to a slice so kernels never
/// see the difference.
pub struct PooledBuf {
    data: Vec<f32>,
    pooled: bool,
}

impl PooledBuf {
    /// A buffer of `n` elements with unspecified (but initialised)
    /// contents; the caller must overwrite every element before reading.
    pub fn take_uninit(n: usize) -> Self {
        if enabled() {
            PooledBuf {
                data: global().take_uninit(n),
                pooled: true,
            }
        } else {
            let pool = global();
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            pool.misses.fetch_add(1, Ordering::Relaxed);
            pool.alloc_bytes
                .fetch_add((n * 4) as u64, Ordering::Relaxed);
            PooledBuf {
                data: vec![0.0; n],
                pooled: false,
            }
        }
    }

    /// A buffer of `n` zeros (for accumulation targets).
    pub fn take_zeroed(n: usize) -> Self {
        if enabled() {
            PooledBuf {
                data: global().take_zeroed(n),
                pooled: true,
            }
        } else {
            let pool = global();
            // ordering: stat — monotonic telemetry counter; readers tolerate staleness.
            pool.misses.fetch_add(1, Ordering::Relaxed);
            pool.alloc_bytes
                .fetch_add((n * 4) as u64, Ordering::Relaxed);
            PooledBuf {
                data: vec![0.0; n],
                pooled: false,
            }
        }
    }

    /// Adopts an externally built `Vec`; its storage joins the recycling
    /// regime on drop.
    pub fn from_vec(data: Vec<f32>) -> Self {
        PooledBuf {
            data,
            pooled: enabled(),
        }
    }

    /// Consumes the handle, detaching the `Vec` from the pool.
    pub fn into_vec(mut self) -> Vec<f32> {
        self.pooled = false;
        std::mem::take(&mut self.data)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.pooled && self.data.capacity() >= MIN_CLASS {
            global().give(std::mem::take(&mut self.data));
        }
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        let mut out = PooledBuf::take_uninit(self.data.len());
        out.copy_from_slice(&self.data);
        out
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PooledBuf(len={}, pooled={})",
            self.data.len(),
            self.pooled
        )
    }
}

// ---------------------------------------------------------------------
// Global stats + cdcl-obs mirroring
// ---------------------------------------------------------------------

/// Snapshot of the global pool's counters.
pub fn pool_stats() -> PoolStats {
    global().stats()
}

/// Zeroes the global pool's hit/miss/alloc counters (benchmark hygiene).
pub fn reset_pool_stats() {
    global().reset_stats()
}

static OBS_ALLOC_BYTES: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_alloc_bytes_total",
    "Heap bytes allocated through tensor-pool paths since process start",
);
static OBS_POOL_HITS: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_pool_hits_total",
    "Buffer requests served from the pool free lists",
);
static OBS_POOL_MISSES: cdcl_obs::Counter = cdcl_obs::Counter::new(
    "cdcl_pool_misses_total",
    "Buffer requests that fell through to the heap allocator",
);
static OBS_POOL_HIT_RATE: cdcl_obs::Gauge = cdcl_obs::Gauge::new(
    "cdcl_pool_hit_rate",
    "Fraction of buffer requests served from the pool free lists",
);
static OBS_POOL_RESIDENT: cdcl_obs::Gauge = cdcl_obs::Gauge::new(
    "cdcl_pool_bytes_resident",
    "Bytes currently parked in the pool free lists",
);

/// Mirrors the pool atomics into the `cdcl-obs` registry (same pattern as
/// `kernels::counters::publish_registry`: local relaxed atomics on the hot
/// path, mirrored at scrape or health-snapshot time).
pub fn publish_registry() {
    let snap = pool_stats();
    OBS_ALLOC_BYTES.store(snap.alloc_bytes);
    OBS_POOL_HITS.store(snap.hits);
    OBS_POOL_MISSES.store(snap.misses);
    OBS_POOL_HIT_RATE.set(snap.hit_rate());
    OBS_POOL_RESIDENT.set(snap.resident_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_routing_rounds_up() {
        assert_eq!(class_for_request(1), Some(0));
        assert_eq!(class_for_request(64), Some(0));
        assert_eq!(class_for_request(65), Some(1));
        assert_eq!(class_for_request(128), Some(1));
        assert_eq!(class_for_request(MAX_CLASS), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_request(MAX_CLASS + 1), None);
    }

    #[test]
    fn capacity_routing_rounds_down() {
        assert_eq!(class_for_capacity(63), None);
        assert_eq!(class_for_capacity(64), Some(0));
        assert_eq!(class_for_capacity(127), Some(0));
        assert_eq!(class_for_capacity(128), Some(1));
        // Every recyclable capacity serves any request routed to its class.
        for cap in [64usize, 100, 129, 5000, 1 << 20] {
            let c = class_for_capacity(cap).unwrap();
            assert!(class_size(c) <= cap, "class {c} too big for cap {cap}");
        }
    }

    #[test]
    fn instance_take_give_recycles() {
        let pool = BufferPool::new();
        let v = pool.take_uninit(100);
        assert_eq!(v.len(), 100);
        assert_eq!(pool.stats().misses, 1);
        let cap = v.capacity();
        assert!(cap >= 100);
        pool.give(v);
        assert_eq!(pool.stats().resident_bytes, (cap * 4) as u64);
        let v2 = pool.take_uninit(80);
        assert_eq!(v2.len(), 80);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().resident_bytes, 0);
    }

    #[test]
    fn take_zeroed_is_zero_after_dirty_recycle() {
        let pool = BufferPool::new();
        let mut v = pool.take_uninit(64);
        v.iter_mut().for_each(|x| *x = 7.0);
        pool.give(v);
        let z = pool.take_zeroed(64);
        assert!(z.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn class_cap_bounds_residency() {
        let pool = BufferPool::new();
        let cap = class_cap(0);
        for _ in 0..(cap + 10) {
            pool.give(vec![0.0; MIN_CLASS]);
        }
        let resident = pool.stats().resident_bytes as usize;
        assert!(resident <= cap * MIN_CLASS * 4 * 2);
    }

    #[test]
    fn class_caps_scale_inversely_with_size() {
        assert_eq!(class_cap(0), CLASS_CAP_MAX, "tiny buffers pool deeply");
        assert_eq!(class_cap(NUM_CLASSES - 1), CLASS_CAP_MIN);
        for idx in 1..NUM_CLASSES {
            assert!(
                class_cap(idx) <= class_cap(idx - 1),
                "caps must be monotone"
            );
        }
    }

    #[test]
    fn over_max_class_bypasses() {
        let pool = BufferPool::new();
        let v = pool.take_uninit(MAX_CLASS + 1);
        assert_eq!(v.len(), MAX_CLASS + 1);
        pool.give(v); // capped to MAX_CLASS class by capacity routing
        let after = pool.stats();
        assert_eq!(after.misses, 1);
    }

    #[test]
    fn pooled_buf_roundtrip_and_clone() {
        let mut a = PooledBuf::take_uninit(10);
        a.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        let v = a.into_vec();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn stats_reset_keeps_residency() {
        let pool = BufferPool::new();
        let v = pool.take_uninit(256);
        pool.give(v);
        let resident = pool.stats().resident_bytes;
        pool.reset_stats();
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.resident_bytes, resident);
        pool.clear();
        assert_eq!(pool.stats().resident_bytes, 0);
    }
}
