//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace tests use:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map`
//! - range strategies for the integer types and `f32`/`f64`
//! - tuple strategies (generated left to right)
//! - [`collection::vec`] with a fixed or ranged length
//! - the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//!   [`ProptestConfig::with_cases`]
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case number and message and panics immediately. Generation is fully
//! deterministic — the RNG is seeded from the test's module path and name —
//! so failures reproduce exactly on re-run.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator backing all strategies (SplitMix64 stream seeded
/// from the test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded by hashing `name` (typically `module_path!() :: test`), so
    /// every test gets an independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: passes BigCrush, one u64 of state, never yields a
        // stuck-at-zero stream.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` via Lemire's multiply-shift.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Length specification for [`collection::vec`]: a fixed `usize` or a
/// half-open `Range<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration + macros
// ---------------------------------------------------------------------------

/// Per-test runner settings.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `config.cases` generated
/// inputs. `prop_assert*!` failures report the case number and input-free
/// message, then panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, msg,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`: both are {:?}",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Mirrors `proptest::prelude::prop` (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_test("vec_lengths");
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u8..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let w = Strategy::generate(&collection::vec(0u8..4, 3usize), &mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat =
            (1usize..9, 1usize..9).prop_flat_map(|(r, c)| collection::vec(-1.0f32..1.0, r * c));
        let a = Strategy::generate(&strat, &mut TestRng::for_test("det"));
        let b = Strategy::generate(&strat, &mut TestRng::for_test("det"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..10, v in prop::collection::vec(0u64..100, 1..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
