//! `cdcl-lint` — the workspace invariant linter (DESIGN.md §9).
//!
//! Usage (from anywhere in the workspace):
//!
//! ```text
//! cargo run -p cdcl-check --bin cdcl-lint
//! ```
//!
//! Scans every `.rs` file under `crates/*/src`, prints each violation with
//! file/line/rule provenance, and exits non-zero if any violation is not
//! vetted by `lint-allow.txt` at the workspace root. Run by the CI
//! `static-analysis` job.

use std::path::Path;
use std::process::ExitCode;

use cdcl_check::{lint_workspace, Allowlist};

fn main() -> ExitCode {
    // CARGO_MANIFEST_DIR = crates/check; the workspace root is two up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let Some(root) = manifest.parent().and_then(Path::parent) else {
        eprintln!("cdcl-lint: cannot locate workspace root from {manifest:?}");
        return ExitCode::FAILURE;
    };

    let allow_path = root.join("lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let (violations, allowed) = lint_workspace(root, &allow);

    for f in &violations {
        println!("{f}");
    }
    for stale in allow.unused(&allowed) {
        println!("warning: stale lint-allow entry (matched nothing): {stale}");
    }
    println!(
        "cdcl-lint: {} violation(s), {} allowlisted",
        violations.len(),
        allowed.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
