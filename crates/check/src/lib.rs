//! Workspace invariant linter (DESIGN.md §9).
//!
//! A line-oriented scanner over `crates/*/src` that enforces the coding
//! contracts the workspace relies on but the compiler cannot check:
//!
//! * **no-panic** — no `.unwrap()` / `.expect(` / `panic!` in library code
//!   outside `#[cfg(test)]`; shape violations must route through
//!   `cdcl_tensor::check` and the few sanctioned escalation points are
//!   enumerated (with justification) in `lint-allow.txt`;
//! * **no-hashmap** — no `std::collections::HashMap` in non-test library
//!   code: its iteration order is random-seeded per process, which silently
//!   breaks the workspace's bitwise-determinism contract (DESIGN.md §7);
//! * **no-raw-timing** — no `Instant::now` / `thread::spawn` outside
//!   `crates/telemetry` and the kernel thread pool: ad-hoc timing belongs in
//!   telemetry spans and ad-hoc threads break the deterministic reduction
//!   order of the pool;
//! * **phase-spans** — every trainer phase listed in DESIGN.md §8 must be
//!   wrapped in a `telemetry::span("<name>")` somewhere in `crates/core/src`
//!   so traced runs always observe the full Algorithm-1 breakdown; the
//!   §16 traind pipeline stages are held to the same rule inside
//!   `crates/bench/src/traind`;
//! * **atomic-write** — inside `crates/snapshot`, every file write/rename
//!   must go through the `atomic::atomic_write` helper (write temp, fsync,
//!   then rename): a raw `File::create`/`fs::write`/`fs::rename` on a
//!   final path can tear a checkpoint mid-crash, which is precisely what
//!   the crate exists to prevent. Only `src/atomic.rs` itself may touch
//!   the filesystem primitives;
//! * **metric-names** — every `Counter::new("…")` / `Gauge::new("…")` /
//!   `Histogram::new("…")` registration must use a `cdcl_`-prefixed
//!   snake_case name (counters additionally end in `_total`, the Prometheus
//!   convention), and outside `crates/obs` no code may look a metric up by
//!   string at the record site (`.counter("…")` etc.) — record through the
//!   static handle so the name exists in exactly one place;
//! * **pooled-alloc** — no raw `vec![0.0; …]` / `Vec::with_capacity` in the
//!   hot-path crates (tensor, autograd, nn, optim) outside the buffer pool
//!   itself: steady-state f32 storage must come from
//!   `cdcl_tensor::PooledBuf` (`take_uninit` / `take_zeroed`) so training
//!   reaches a zero-alloc steady state (DESIGN.md §12). Vetted cold paths
//!   (construction-time, per-run setup) are enumerated in `lint-allow.txt`.
//!
//! Before pattern matching, each file is *masked*: the contents of string
//! literals, char literals, and comments are blanked out (newlines kept), so
//! a pattern inside a doc comment or an error message never trips a rule.
//! `#[cfg(test)]` items are excluded by real token-tree tracking. The
//! phase-spans rule is the one exception — span names live inside string
//! literals, so it scans the raw text.
//!
//! Since PR 8 the engine is token-based: every file is lexed once by
//! [`lexer`] (zero-dep, handles raw strings, nested block comments, and the
//! char/lifetime ambiguity) and masking, test regions, and the deeper
//! concurrency passes — [`lockorder`] (lock-order graph, deadlock cycles,
//! guards across blocking calls), [`atomics`] (ordering-contract audit),
//! and the [`witness`] runtime recorder — all read the same token stream.
//! It is still not a Rust parser, and the approximations are chosen to err
//! on the side of flagging.

pub mod atomics;
pub mod lexer;
pub mod lockorder;
pub mod witness;

use std::fmt;
use std::path::{Path, PathBuf};

/// The trainer phases DESIGN.md §8 requires a telemetry span for
/// (`drift_detect` added by §15's task-free boundary inference).
pub const REQUIRED_SPANS: [&str; 13] = [
    "warmup",
    "adaptation",
    "centroid_fit",
    "pseudo_assign",
    "pair_filter",
    "replay",
    "memory_select",
    "memory_rebalance",
    "eval_til",
    "eval_cil",
    "graph_check",
    "checkpoint",
    "drift_detect",
];

/// The traind pipeline stages DESIGN.md §16's distributed trace observes
/// inside `crates/bench/src/traind`: the per-window root plus the staging,
/// training, and publication children (the serve-side `reload` /
/// `first_serve` spans live in the serve plane, outside this scope).
pub const TRAIND_REQUIRED_SPANS: [&str; 4] = ["window_commit", "ingest", "online_round", "publish"];

/// One rule violation at a specific line of a specific file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line (0 for file/workspace-level findings).
    pub line: usize,
    /// Rule identifier (`no-panic`, `no-hashmap`, `no-raw-timing`,
    /// `phase-spans`, `atomic-write`, `metric-names`, `pooled-alloc`).
    pub rule: &'static str,
    /// The pattern text that matched.
    pub needle: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` — {}",
            self.file, self.line, self.rule, self.needle, self.excerpt
        )
    }
}

/// Minimal JSON string escaping (the check crate is dependency-free by
/// design, so it cannot use the vendored serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// One-line JSON object for `--json` output modes (and CI artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"needle\":\"{}\",\"excerpt\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            json_escape(self.rule),
            json_escape(&self.needle),
            json_escape(&self.excerpt)
        )
    }
}

/// Parsed `lint-allow.txt`: each entry vets one (path prefix, needle) pair.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug)]
struct AllowEntry {
    path: String,
    needle: String,
}

impl Allowlist {
    /// Parses the allowlist format: one `path-prefix: needle` per line,
    /// `#` comments (the per-entry justification) and blank lines skipped.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, needle)) = line.split_once(": ") {
                entries.push(AllowEntry {
                    path: path.trim().to_string(),
                    needle: needle.trim().to_string(),
                });
            }
        }
        Self { entries }
    }

    /// Whether `f` is vetted: some entry's path is a prefix of the finding's
    /// file and its needle appears in the offending line.
    pub fn allows(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| f.file.starts_with(&e.path) && f.excerpt.contains(&e.needle))
    }

    /// Entries that vetted no finding in `all` — stale allowances worth
    /// pruning (reported as warnings, not failures).
    pub fn unused(&self, all: &[Finding]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| {
                !all.iter()
                    .any(|f| f.file.starts_with(&e.path) && f.excerpt.contains(&e.needle))
            })
            .map(|e| format!("{}: {}", e.path, e.needle))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Source masking
// ----------------------------------------------------------------------

/// Replaces the *contents* of string literals, char literals, and comments
/// with spaces (newlines kept), so char offsets and line numbers survive but
/// text inside them can never match a rule pattern. Implemented on the
/// token stream from [`lexer`] — one lex serves masking, test-region
/// exclusion, and the concurrency passes alike.
pub fn mask_source(src: &str) -> String {
    lexer::mask(src)
}

// ----------------------------------------------------------------------
// Rules
// ----------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `needle` in `line` that are not part of a longer
/// identifier (checked one char left of the match).
fn word_hits(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let prev_ok = line[..at]
            .chars()
            .next_back()
            .map_or(true, |c| !is_ident_char(c));
        if prev_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Paths exempt from the no-raw-timing rule: the telemetry and obs crates
/// own timing (spans and histogram timers), the kernel pool owns threads.
fn raw_timing_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/telemetry/")
        || rel_path.starts_with("crates/obs/")
        || rel_path == "crates/tensor/src/kernels/pool.rs"
}

/// Filesystem primitives the atomic-write rule bans inside
/// `crates/snapshot`: each can publish a torn file on a final path.
const RAW_FS_NEEDLES: [&str; 4] = ["File::create", "fs::write", "fs::rename", "OpenOptions"];

/// Whether the atomic-write rule applies to `rel_path`: all of
/// `crates/snapshot/src` except the helper module that *implements*
/// write-temp-then-rename.
fn atomic_write_applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/snapshot/src/") && rel_path != "crates/snapshot/src/atomic.rs"
}

/// Metric handle constructors whose first argument registers the name.
const METRIC_CTORS: [(&str, &str); 6] = [
    ("Counter::new(\"", "counter"),
    ("Gauge::new(\"", "gauge"),
    ("Histogram::new(\"", "histogram"),
    ("CounterFamily::new(\"", "counter family"),
    ("GaugeFamily::new(\"", "gauge family"),
    ("HistogramFamily::new(\"", "histogram family"),
];

/// Registry string lookups banned outside `crates/obs`: recording through
/// an ad-hoc name bypasses the single static registration point, so a typo
/// silently forks the time series.
const METRIC_LOOKUPS: [&str; 3] = [".counter(\"", ".gauge(\"", ".histogram(\""];

/// Whether the metric-names rule applies: everywhere except the crate that
/// implements the registry (whose accessors legitimately take name strings).
fn metric_rule_applies(rel_path: &str) -> bool {
    !rel_path.starts_with("crates/obs/")
}

/// Allocation primitives the pooled-alloc rule bans in hot-path crates:
/// steady-state f32 storage must be recycled through the buffer pool, not
/// freshly heap-allocated every step.
const POOLED_ALLOC_NEEDLES: [&str; 2] = ["vec![0.0", "Vec::with_capacity"];

/// Whether the pooled-alloc rule applies to `rel_path`: the four crates on
/// the per-step hot path, except the two `pool.rs` modules (the buffer pool
/// *is* the sanctioned allocator; the kernel thread pool allocates once at
/// startup).
fn pooled_alloc_applies(rel_path: &str) -> bool {
    const HOT: [&str; 4] = [
        "crates/tensor/src/",
        "crates/autograd/src/",
        "crates/nn/src/",
        "crates/optim/src/",
    ];
    HOT.iter().any(|p| rel_path.starts_with(p)) && !rel_path.ends_with("/pool.rs")
}

/// A well-formed workspace metric name: `cdcl_`-prefixed snake_case;
/// counters additionally carry the Prometheus `_total` suffix.
fn metric_name_ok(kind: &str, name: &str) -> bool {
    name.starts_with("cdcl_")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && (!kind.starts_with("counter") || name.ends_with("_total"))
}

/// Applies the metric-names rule to one line. Constructor calls and lookups
/// are located on the MASKED line (so doc comments and string literals that
/// merely mention them cannot trip the rule — masking keeps the delimiter
/// quotes, blanking only their contents), while the registered name itself
/// is read back from the RAW line at the same char offset (masking is
/// char-for-char, so offsets align). Returns the needles to report:
/// malformed names as `` counter name `x` `` and banned record-site lookups
/// verbatim.
fn metric_line_findings(masked_line: &str, raw_line: &str) -> Vec<String> {
    let raw: Vec<char> = raw_line.chars().collect();
    let mut out = Vec::new();
    for (ctor, kind) in METRIC_CTORS {
        let mut from = 0;
        while let Some(rel) = masked_line[from..].find(ctor) {
            let at = from + rel;
            let prev_ok = masked_line[..at]
                .chars()
                .next_back()
                .map_or(true, |c| !is_ident_char(c));
            let name_start = masked_line[..at + ctor.len()].chars().count();
            let name: String = raw
                .get(name_start..)
                .unwrap_or(&[])
                .iter()
                .take_while(|&&c| c != '"')
                .collect();
            if prev_ok && !metric_name_ok(kind, &name) {
                out.push(format!("{kind} name `{name}`"));
            }
            from = at + ctor.len();
        }
    }
    for needle in METRIC_LOOKUPS {
        if masked_line.contains(needle) {
            out.push(needle.to_string());
        }
    }
    out
}

/// Scans one file's source, returning every rule violation outside
/// `#[cfg(test)]` regions. `rel_path` is the workspace-relative path with
/// forward slashes.
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let toks = lexer::lex(source);
    let masked = lexer::mask_with(source, &toks);
    let regions = lexer::test_line_regions(&toks);
    let mut findings = Vec::new();

    for (lineno, line) in masked.lines().enumerate() {
        if lexer::line_in_regions(&regions, lineno + 1) {
            continue;
        }
        let mut push = |rule: &'static str, needle: &str| {
            // Excerpt from the RAW source so allowlist needles can match
            // message text (e.g. `.expect("param lock poisoned")`).
            let raw_line = source.lines().nth(lineno).unwrap_or(line).trim();
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno + 1,
                rule,
                needle: needle.to_string(),
                excerpt: raw_line.to_string(),
            });
        };
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                push("no-panic", needle);
            }
        }
        if word_hits(line, "panic!") {
            push("no-panic", "panic!");
        }
        if word_hits(line, "HashMap") {
            push("no-hashmap", "HashMap");
        }
        if !raw_timing_exempt(rel_path) {
            for needle in ["Instant::now", "thread::spawn"] {
                if line.contains(needle) {
                    push("no-raw-timing", needle);
                }
            }
        }
        if atomic_write_applies(rel_path) {
            for needle in RAW_FS_NEEDLES {
                if line.contains(needle) {
                    push("atomic-write", needle);
                }
            }
        }
        if metric_rule_applies(rel_path) {
            let raw_line = source.lines().nth(lineno).unwrap_or("");
            for needle in metric_line_findings(line, raw_line) {
                push("metric-names", &needle);
            }
        }
        if pooled_alloc_applies(rel_path) {
            for needle in POOLED_ALLOC_NEEDLES {
                if line.contains(needle) {
                    push("pooled-alloc", needle);
                }
            }
        }
    }
    findings
}

/// Workspace-level rule: every [`REQUIRED_SPANS`] phase must appear as a
/// contiguous `span("<name>")` call somewhere in `crates/core/src`. Scans
/// the RAW text — span names live inside string literals, which masking
/// would hide.
pub fn check_phase_spans(core_sources: &[(String, String)]) -> Vec<Finding> {
    check_spans_in(&REQUIRED_SPANS, "crates/core/src", "§8", core_sources)
}

/// Same rule scoped to the traind daemon: every [`TRAIND_REQUIRED_SPANS`]
/// stage must appear in `crates/bench/src/traind`, or a distributed trace
/// loses a stage of its critical path (DESIGN.md §16).
pub fn check_traind_spans(traind_sources: &[(String, String)]) -> Vec<Finding> {
    check_spans_in(
        &TRAIND_REQUIRED_SPANS,
        "crates/bench/src/traind",
        "§16",
        traind_sources,
    )
}

fn check_spans_in(
    required: &[&str],
    scope: &str,
    section: &str,
    sources: &[(String, String)],
) -> Vec<Finding> {
    required
        .iter()
        .filter(|name| {
            let call = format!("span(\"{name}\")");
            !sources.iter().any(|(_, text)| text.contains(&call))
        })
        .map(|name| Finding {
            file: scope.to_string(),
            line: 0,
            rule: "phase-spans",
            needle: format!("span(\"{name}\")"),
            excerpt: format!("DESIGN.md {section} phase `{name}` has no telemetry span"),
        })
        .collect()
}

// ----------------------------------------------------------------------
// File walking
// ----------------------------------------------------------------------

/// All `.rs` files under `crates/*/src`, workspace-relative with forward
/// slashes, in sorted (deterministic) order.
pub fn collect_rs_files(workspace_root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = workspace_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir);
    crate_dirs.retain(|p| p.is_dir());
    for krate in crate_dirs {
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out);
        }
    }
    out.sort();
    out
}

fn read_dir_sorted(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd.flatten().map(|e| e.path()).collect(),
        Err(_) => Vec::new(),
    };
    v.sort();
    v
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for p in read_dir_sorted(dir) {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Strips `workspace_root` and normalizes to forward slashes.
pub fn rel_path(workspace_root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(workspace_root).unwrap_or(p);
    rel.to_string_lossy().replace('\\', "/")
}

/// Full workspace lint: walks `crates/*/src`, applies the per-file rules
/// plus the phase-spans rule, and splits results into (violations,
/// allowed) under `allow`. Files that fail to read are reported as
/// findings rather than silently skipped.
pub fn lint_workspace(workspace_root: &Path, allow: &Allowlist) -> (Vec<Finding>, Vec<Finding>) {
    let mut all = Vec::new();
    let mut core_sources = Vec::new();
    let mut traind_sources = Vec::new();
    for path in collect_rs_files(workspace_root) {
        let rel = rel_path(workspace_root, &path);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                all.push(Finding {
                    file: rel,
                    line: 0,
                    rule: "io",
                    needle: String::new(),
                    excerpt: format!("cannot read file: {e}"),
                });
                continue;
            }
        };
        all.extend(scan_file(&rel, &source));
        if rel.starts_with("crates/core/src") {
            core_sources.push((rel, source));
        } else if rel.starts_with("crates/bench/src/traind") {
            traind_sources.push((rel, source));
        }
    }
    all.extend(check_phase_spans(&core_sources));
    all.extend(check_traind_spans(&traind_sources));
    all.into_iter().partition(|f| !allow.allows(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_strings_comments_and_chars() {
        let src = "let a = \"panic!()\"; // .unwrap()\nlet c = '\\n'; /* HashMap */ let l: &'static str = x;";
        let m = mask_source(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains(".unwrap()"));
        assert!(!m.contains("HashMap"));
        assert!(m.contains("'static"), "lifetimes must survive masking");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_preserves_string_line_continuations() {
        // `\<newline>` inside a string must keep its newline, or every
        // finding below it reports the wrong line.
        let src = "let s = \"head \\\n tail\";\nx.unwrap();\n";
        let m = mask_source(src);
        assert_eq!(m.lines().count(), src.lines().count());
        let f = scan_file("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn masking_handles_raw_strings() {
        let src = "let s = r#\"panic! .unwrap()\"#; let t = self.unwrap();";
        let m = mask_source(src);
        // The raw string's content is blanked; the real call survives.
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn flags_panic_unwrap_expect_outside_tests() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n    assert!(true);\n}\n";
        let f = scan_file("crates/x/src/lib.rs", src);
        let needles: Vec<&str> = f.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(needles, [".unwrap()", ".expect(", "panic!"]);
        assert!(f.iter().all(|f| f.rule == "no-panic"));
        // Provenance: 1-indexed lines.
        assert_eq!(f[0].line, 2);
        assert_eq!(f[2].excerpt, "panic!(\"no\");");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\nfn tail() { y.unwrap(); }\n";
        let f = scan_file("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn hashmap_and_timing_rules() {
        let src =
            "use std::collections::HashMap;\nlet t = Instant::now();\nstd::thread::spawn(f);\n";
        let f = scan_file("crates/x/src/lib.rs", src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["no-hashmap", "no-raw-timing", "no-raw-timing"]);
        // Exempt paths skip only the timing rule.
        let f = scan_file("crates/telemetry/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-hashmap");
        let f = scan_file("crates/tensor/src/kernels/pool.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn longer_identifiers_do_not_trip_word_rules() {
        let src = "fn my_panic!_not_really() {}\nlet x = FxHashMap::default();\n";
        // `FxHashMap` must not match `HashMap` (prev char is ident).
        let f = scan_file("crates/x/src/lib.rs", src);
        assert!(f.iter().all(|f| f.rule != "no-hashmap"), "{f:?}");
    }

    #[test]
    fn atomic_write_rule_guards_the_snapshot_crate() {
        let src = "let f = std::fs::File::create(path)?;\nfs::write(p, b)?;\nfs::rename(a, b)?;\nlet o = OpenOptions::new();\n";
        // Inside crates/snapshot: every raw primitive is flagged.
        let f = scan_file("crates/snapshot/src/format.rs", src);
        let needles: Vec<&str> = f.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(
            needles,
            ["File::create", "fs::write", "fs::rename", "OpenOptions"]
        );
        assert!(f.iter().all(|f| f.rule == "atomic-write"));
        // The helper module that implements write-temp-then-rename is the
        // sanctioned exception.
        assert!(scan_file("crates/snapshot/src/atomic.rs", src).is_empty());
        // Other crates are out of scope for this rule.
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn atomic_write_rule_ignores_masked_and_test_code() {
        let src = "// File::create is documented here\nlet s = \"fs::rename\";\n#[cfg(test)]\nmod tests {\n    fn t() { fs::write(p, b); }\n}\n";
        assert!(scan_file("crates/snapshot/src/wire.rs", src).is_empty());
    }

    #[test]
    fn metric_names_rule_enforces_convention_and_static_registration() {
        // Well-formed registrations pass.
        let ok = "static A: Counter = Counter::new(\"cdcl_kernel_gemm_calls_total\");\n\
                  static B: Gauge = Gauge::new(\"cdcl_train_loss\");\n\
                  static C: Histogram = Histogram::new(\"cdcl_serve_batch_latency_us\");\n";
        assert!(scan_file("crates/core/src/health.rs", ok).is_empty());
        // Bad names: missing prefix, camelCase, counter without _total.
        let bad = "static A: Counter = Counter::new(\"gemm_calls_total\");\n\
                   static B: Gauge = Gauge::new(\"cdcl_trainLoss\");\n\
                   static C: Counter = Counter::new(\"cdcl_serve_requests\");\n";
        let f = scan_file("crates/core/src/health.rs", bad);
        let needles: Vec<&str> = f.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(
            needles,
            [
                "counter name `gemm_calls_total`",
                "gauge name `cdcl_trainLoss`",
                "counter name `cdcl_serve_requests`",
            ],
            "{f:?}"
        );
        assert!(f.iter().all(|f| f.rule == "metric-names"));
        // Ad-hoc string lookups at record sites are banned outside obs.
        let lookup = "fn f() { cdcl_obs::global().counter(\"cdcl_x_total\").inc(); }\n";
        let f = scan_file("crates/bench/src/serve.rs", lookup);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].needle, ".counter(\"");
        // The registry crate itself is exempt (its accessors take names).
        assert!(scan_file("crates/obs/src/lib.rs", lookup).is_empty());
        // A doc comment mentioning a constructor must not trip the rule.
        let doc = "/// Register with `Counter::new(\"whatever\")` or `.gauge(\"x\")`.\nfn f() {}\n";
        assert!(scan_file("crates/core/src/health.rs", doc).is_empty());
        // Labeled families are held to the same naming convention.
        let fam_ok = "static A: CounterFamily = CounterFamily::new(\"cdcl_serve_model_requests_total\");\n\
                      static B: GaugeFamily = GaugeFamily::new(\"cdcl_serve_model_inflight\");\n\
                      static C: HistogramFamily = HistogramFamily::new(\"cdcl_serve_model_latency_us\");\n";
        assert!(scan_file("crates/bench/src/serve/metrics.rs", fam_ok).is_empty());
        let fam_bad = "static A: CounterFamily = CounterFamily::new(\"model_requests\");\n\
                       static B: HistogramFamily = HistogramFamily::new(\"cdcl_modelLatency\");\n";
        let f = scan_file("crates/bench/src/serve/metrics.rs", fam_bad);
        let needles: Vec<&str> = f.iter().map(|f| f.needle.as_str()).collect();
        assert_eq!(
            needles,
            [
                "counter family name `model_requests`",
                "histogram family name `cdcl_modelLatency`",
            ],
            "{f:?}"
        );
    }

    #[test]
    fn pooled_alloc_rule_guards_hot_path_crates() {
        let src = "let a = vec![0.0f32; n];\nlet b = Vec::with_capacity(n);\n";
        for file in [
            "crates/tensor/src/matmul.rs",
            "crates/autograd/src/graph.rs",
            "crates/nn/src/layers.rs",
            "crates/optim/src/optimizer.rs",
        ] {
            let f = scan_file(file, src);
            let needles: Vec<&str> = f.iter().map(|f| f.needle.as_str()).collect();
            assert_eq!(needles, ["vec![0.0", "Vec::with_capacity"], "{file}");
            assert!(f.iter().all(|f| f.rule == "pooled-alloc"));
        }
        // The buffer pool and the kernel thread pool are the sanctioned
        // allocators; crates off the hot path are out of scope.
        assert!(scan_file("crates/tensor/src/pool.rs", src).is_empty());
        assert!(scan_file("crates/tensor/src/kernels/pool.rs", src).is_empty());
        assert!(scan_file("crates/data/src/batch.rs", src).is_empty());
        assert!(scan_file("crates/bench/src/serve.rs", src).is_empty());
    }

    #[test]
    fn pooled_alloc_rule_ignores_masked_and_test_code() {
        let src = "// vec![0.0; n] is documented here\n#[cfg(test)]\nmod tests {\n    fn t() { let v = Vec::with_capacity(3); }\n}\n";
        assert!(scan_file("crates/tensor/src/tensor.rs", src).is_empty());
    }

    #[test]
    fn obs_crate_is_exempt_from_raw_timing() {
        let src = "let t = Instant::now();\n";
        assert!(scan_file("crates/obs/src/lib.rs", src).is_empty());
        assert_eq!(scan_file("crates/core/src/trainer.rs", src).len(), 1);
    }

    #[test]
    fn phase_span_rule_reports_missing_spans() {
        let have = REQUIRED_SPANS
            .iter()
            .take(REQUIRED_SPANS.len() - 1)
            .map(|n| format!("let _s = telemetry::span(\"{n}\");"))
            .collect::<Vec<_>>()
            .join("\n");
        let sources = vec![("crates/core/src/trainer.rs".to_string(), have)];
        let f = check_phase_spans(&sources);
        assert_eq!(f.len(), 1);
        assert!(f[0]
            .needle
            .contains(REQUIRED_SPANS[REQUIRED_SPANS.len() - 1]));
    }

    #[test]
    fn traind_span_rule_reports_missing_stages() {
        let have = "let root = telemetry::span(\"window_commit\");\n\
                    let _s = telemetry::span(\"ingest\");\n\
                    let _s = telemetry::span(\"online_round\");\n"
            .to_string();
        let sources = vec![("crates/bench/src/traind/mod.rs".to_string(), have)];
        let f = check_traind_spans(&sources);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].needle, "span(\"publish\")");
        assert_eq!(f[0].file, "crates/bench/src/traind");
        assert!(check_traind_spans(&[(
            "crates/bench/src/traind/mod.rs".to_string(),
            TRAIND_REQUIRED_SPANS
                .iter()
                .map(|n| format!("telemetry::span(\"{n}\")"))
                .collect::<Vec<_>>()
                .join("\n"),
        )])
        .is_empty());
    }

    #[test]
    fn allowlist_vets_by_path_prefix_and_needle() {
        let allow = Allowlist::parse(
            "# justification comment\ncrates/autograd/src/param.rs: param lock poisoned\n",
        );
        let vetted = Finding {
            file: "crates/autograd/src/param.rs".to_string(),
            line: 46,
            rule: "no-panic",
            needle: ".expect(".to_string(),
            excerpt: "self.inner.read().expect(\"param lock poisoned\")".to_string(),
        };
        let other = Finding {
            file: "crates/core/src/trainer.rs".to_string(),
            ..vetted.clone()
        };
        assert!(allow.allows(&vetted));
        assert!(!allow.allows(&other));
        assert!(allow.unused(&[vetted]).is_empty());
        assert_eq!(allow.unused(&[]).len(), 1);
    }
}
